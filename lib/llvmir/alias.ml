(** May/must/no-alias oracle: root classification over
    {!Findex.base_pointer} chains plus a per-dimension GEP subscript
    delta compare.  See the interface for the contract. *)

open Linstr
module Sym = Support.Interner

(* ------------------------------------------------------------------ *)
(* Affine forms (moved here from Memdep, which re-exports them)       *)
(* ------------------------------------------------------------------ *)

type form = { terms : (Sym.t * int) list; konst : int }

let const_form c = { terms = []; konst = c }
let atom_form n = { terms = [ (n, 1) ]; konst = 0 }

let norm_terms terms =
  List.filter
    (fun (_, c) -> c <> 0)
    (List.sort (fun (a, _) (b, _) -> Sym.compare_name a b) terms)

let form_add a b =
  let merged =
    List.fold_left
      (fun acc (n, c) ->
        let prev = Option.value ~default:0 (List.assoc_opt n acc) in
        (n, prev + c) :: List.remove_assoc n acc)
      a.terms b.terms
  in
  { terms = norm_terms merged; konst = a.konst + b.konst }

let form_scale k f =
  {
    terms = norm_terms (List.map (fun (n, c) -> (n, c * k)) f.terms);
    konst = f.konst * k;
  }

let form_sub a b = form_add a (form_scale (-1) b)
let coeff_of (f : form) (n : Sym.t) = Option.value ~default:0 (List.assoc_opt n f.terms)
let drop_atom (f : form) (n : Sym.t) = { f with terms = List.remove_assoc n f.terms }

let form_to_string (f : form) =
  let ts =
    List.map
      (fun (n, c) ->
        if c = 1 then "%" ^ Sym.name n
        else Printf.sprintf "%d*%%%s" c (Sym.name n))
      f.terms
  in
  let parts = ts @ (if f.konst <> 0 || ts = [] then [ string_of_int f.konst ] else []) in
  String.concat " + " parts

(** Expand a value into an affine form over atoms.  Registers with a
    non-affine definition become atoms themselves, which keeps the
    result sound: an SSA register has exactly one value per dynamic
    instance. *)
let form_of (idx : Findex.t) (v : Lvalue.t) : form option =
  let rec go depth v =
    if depth > 24 then None
    else
      match v with
      | Lvalue.Const (Lvalue.CInt (c, _)) -> Some (const_form c)
      | Lvalue.Const (Lvalue.CZero _) -> Some (const_form 0)
      | Lvalue.Const _ -> None
      | Lvalue.Global (n, _) -> Some (atom_form n)
      | Lvalue.Reg (n, _) -> (
          match Findex.def_instr idx n with
          | None -> Some (atom_form n)  (* parameter *)
          | Some i -> (
              match i.op with
              | IBin (Add, a, b) -> (
                  match (go (depth + 1) a, go (depth + 1) b) with
                  | Some fa, Some fb -> Some (form_add fa fb)
                  | _ -> Some (atom_form n))
              | IBin (Sub, a, b) -> (
                  match (go (depth + 1) a, go (depth + 1) b) with
                  | Some fa, Some fb -> Some (form_sub fa fb)
                  | _ -> Some (atom_form n))
              | IBin (Mul, a, b) -> (
                  match (Lvalue.const_int_value a, Lvalue.const_int_value b) with
                  | Some k, _ -> (
                      match go (depth + 1) b with
                      | Some fb -> Some (form_scale k fb)
                      | None -> Some (atom_form n))
                  | _, Some k -> (
                      match go (depth + 1) a with
                      | Some fa -> Some (form_scale k fa)
                      | None -> Some (atom_form n))
                  | _ -> Some (atom_form n))
              | IBin (Shl, a, b) -> (
                  match Lvalue.const_int_value b with
                  | Some k when k >= 0 && k < 31 -> (
                      match go (depth + 1) a with
                      | Some fa -> Some (form_scale (1 lsl k) fa)
                      | None -> Some (atom_form n))
                  | _ -> Some (atom_form n))
              | Cast ((Sext | Zext | Trunc), src, _) -> go (depth + 1) src
              | _ -> Some (atom_form n)))
  in
  go 0 v

(* ------------------------------------------------------------------ *)
(* Roots                                                              *)
(* ------------------------------------------------------------------ *)

type root = Rparam of int | Ralloca | Rglobal | Runknown

let root_to_string = function
  | Rparam i -> Printf.sprintf "param(%d)" i
  | Ralloca -> "alloca"
  | Rglobal -> "global"
  | Runknown -> "unknown"

let root_of ?globals (idx : Findex.t) (v : Lvalue.t) :
    (Sym.t * root) option =
  match v with
  | Lvalue.Global (n, _) -> Some (n, Rglobal)
  | _ -> (
      match Findex.base_pointer idx v with
      | None -> None
      | Some n -> (
          match Findex.def idx n with
          | Some (Findex.Param i) -> Some (n, Rparam i)
          | Some (Findex.Instr k) -> (
              match (Findex.instr idx k).op with
              | Alloca _ -> Some (n, Ralloca)
              | _ -> Some (n, Runknown))
          | None -> (
              (* not defined locally: a global reference, unless a
                 globals set says otherwise *)
              match globals with
              | None -> Some (n, Rglobal)
              | Some gs ->
                  if Sym.Set.mem n gs then Some (n, Rglobal)
                  else Some (n, Runknown))))

(* ------------------------------------------------------------------ *)
(* Subscripts                                                         *)
(* ------------------------------------------------------------------ *)

let rec strip_bitcast (idx : Findex.t) (v : Lvalue.t) : Lvalue.t =
  match v with
  | Lvalue.Reg (n, _) -> (
      match Findex.def_instr idx n with
      | Some { op = Cast (Bitcast, src, _); _ } -> strip_bitcast idx src
      | _ -> v)
  | _ -> v

(** GEP path of a pointer: the source type the indices walk and one
    affine form per index.  [path_ty = None] means the pointer is the
    root itself (no GEP).  Requires the address to be root + one GEP,
    bitcasts stripped on both ends; anything else is opaque. *)
type path = { path_ty : Ltype.t option; path_subs : form list }

let gep_path (idx : Findex.t) (p : Lvalue.t) : path option =
  let direct = Some { path_ty = None; path_subs = [] } in
  match strip_bitcast idx p with
  | Lvalue.Reg (n, _) -> (
      match Findex.def_instr idx n with
      | Some { op = Gep { base; idxs; src_ty; _ }; _ } -> (
          let base_is_root =
            match strip_bitcast idx base with
            | Lvalue.Reg (bn, _) -> (
                match Findex.def_instr idx bn with
                | None -> true  (* parameter *)
                | Some { op = Alloca _; _ } -> true
                | Some _ -> false)
            | Lvalue.Global _ -> true
            | _ -> false
          in
          if not base_is_root then None
          else
            let forms = List.map (form_of idx) idxs in
            if List.for_all Option.is_some forms then
              Some
                { path_ty = Some src_ty; path_subs = List.map Option.get forms }
            else None)
      | None -> direct  (* scalar pointer parameter: zero subscripts *)
      | Some { op = Alloca _; _ } -> direct
      | Some _ -> None)
  | Lvalue.Global _ -> direct
  | _ -> None

let subscripts (idx : Findex.t) (p : Lvalue.t) : form list option =
  Option.map (fun pa -> pa.path_subs) (gep_path idx p)

(* ------------------------------------------------------------------ *)
(* The oracle                                                         *)
(* ------------------------------------------------------------------ *)

type verdict = No_alias | May_alias | Must_alias

let verdict_to_string = function
  | No_alias -> "no-alias"
  | May_alias -> "may-alias"
  | Must_alias -> "must-alias"

let known = function Rparam _ | Ralloca | Rglobal -> true | Runknown -> false

let base_alias ?globals (idx : Findex.t) (p : Lvalue.t) (q : Lvalue.t) :
    verdict =
  match (root_of ?globals idx p, root_of ?globals idx q) with
  | None, _ | _, None -> May_alias
  | Some (np, rp), Some (nq, rq) ->
      (* the same root symbol is the same region whatever its
         classification — an SSA value has one address *)
      if Sym.equal np nq then Must_alias
      else if known rp && known rq then No_alias
      else May_alias

let is_const_zero (f : form) = f.terms = [] && f.konst = 0
let is_const_nonzero (f : form) = f.terms = [] && f.konst <> 0

let alias ?globals (idx : Findex.t) (p : Lvalue.t) (q : Lvalue.t) : verdict =
  let same_reg =
    match (p, q) with
    | Lvalue.Reg (a, _), Lvalue.Reg (b, _) -> Sym.equal a b
    | Lvalue.Global (a, _), Lvalue.Global (b, _) -> Sym.equal a b
    | _ -> false
  in
  if same_reg then Must_alias
  else
    match (root_of ?globals idx p, root_of ?globals idx q) with
    | None, _ | _, None -> May_alias
    | Some (np, rp), Some (nq, rq) ->
        if Sym.equal np nq then
          (* same base address (even when its classification is
             unknown): compare the subscript paths *)
          match (gep_path idx p, gep_path idx q) with
          | Some a, Some b
            when (match (a.path_ty, b.path_ty) with
                 | None, None -> true
                 | Some ta, Some tb -> Ltype.equal ta tb
                 | _ -> false)
                 && List.length a.path_subs = List.length b.path_subs ->
              let deltas = List.map2 form_sub a.path_subs b.path_subs in
              if List.for_all is_const_zero deltas then Must_alias
              else if List.exists is_const_nonzero deltas then No_alias
              else May_alias
          | _ -> May_alias
        else if known rp && known rq && not (Sym.equal np nq) then No_alias
        else May_alias
