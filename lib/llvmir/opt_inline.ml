(** Function inlining.  Vitis HLS inlines the design into the top
    function before scheduling; this pass does the same so that
    multi-function kernels (helpers called from the top) synthesize as
    one data path.

    Call sites whose callee is defined in the same module are expanded
    by splitting the block at the call, splicing in a renamed clone of
    the callee's CFG, and joining returns through a phi in the
    continuation block.  Direct recursion is left alone (and will be
    rejected by the HLS front door, as in the real tool). *)

open Linstr
open Lmodule
module Sym = Support.Interner

let fail = Support.Err.fail ~pass:"llvmir.inline"

(** Inline one call to [callee] found in [f]; returns [None] when [f]
    contains no inlinable call. *)
let inline_one (m : t) (f : func) : func option =
  (* locate the first call to a module-defined function *)
  let found = ref None in
  List.iteri
    (fun bi (b : block) ->
      if !found = None then
        List.iteri
          (fun ii (i : Linstr.t) ->
            if !found = None then
              match i.op with
              | Call { callee; _ }
                when callee <> f.fname && find_func m callee <> None ->
                  found := Some (bi, ii, i)
              | _ -> ())
          b.insts)
    f.blocks;
  match !found with
  | None -> None
  | Some (bi, ii, call_inst) ->
      let callee_name, args, _ret_ty =
        match call_inst.op with
        | Call { callee; args; ret } -> (callee, args, ret)
        | _ -> assert false
      in
      let g = find_func_exn m callee_name in
      let names = namegen f in
      (* a prefix no existing label/register starts with, so every
         derived name is fresh even across repeated inlines of the
         same callee *)
      let prefix =
        let taken candidate =
          let cp = candidate ^ "." in
          let starts s =
            String.length s >= String.length cp
            && String.sub s 0 (String.length cp) = cp
          in
          List.exists (fun (b : block) -> starts (Sym.name b.label)) f.blocks
          || fold_insts
               (fun acc (i : Linstr.t) -> acc || starts (result_name i))
               false f
        in
        let rec pick k =
          let candidate = Printf.sprintf "inl.%s.%d" callee_name k in
          if taken candidate then pick (k + 1) else candidate
        in
        pick 0
      in
      (* value renaming: params -> args, locals -> prefixed names *)
      let vmap : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 32 in
      List.iter2
        (fun (p : param) a -> Sym.Tbl.replace vmap (Sym.intern p.pname) a)
        g.params args;
      iter_insts
        (fun (i : Linstr.t) ->
          if (not (Sym.is_empty i.result)) && not (Sym.Tbl.mem vmap i.result)
          then
            Sym.Tbl.replace vmap i.result
              (Lvalue.reg (prefix ^ "." ^ result_name i) i.ty))
        g;
      let lmap : Sym.t Sym.Tbl.t = Sym.Tbl.create 8 in
      List.iter
        (fun (b : block) ->
          Sym.Tbl.replace lmap b.label
            (Sym.intern (prefix ^ "." ^ Sym.name b.label)))
        g.blocks;
      let cont_label =
        Sym.intern (Support.Namegen.fresh names (prefix ^ ".cont"))
      in
      let rename_value v =
        match v with
        | Lvalue.Reg (n, _) -> (
            match Sym.Tbl.find_opt vmap n with Some v' -> v' | None -> v)
        | _ -> v
      in
      let rename_label l =
        match Sym.Tbl.find_opt lmap l with Some l' -> l' | None -> l
      in
      (* clone callee blocks; collect return values *)
      let returns = ref [] in
      let cloned_blocks =
        List.map
          (fun (b : block) ->
            let label = rename_label b.label in
            let insts =
              List.map
                (fun (i : Linstr.t) ->
                  let i = Linstr.map_operands rename_value i in
                  let i = Linstr.map_successors rename_label i in
                  (* phi incoming labels are block references too *)
                  let i =
                    match i.op with
                    | Phi incoming ->
                        {
                          i with
                          op =
                            Phi
                              (List.map
                                 (fun (v, l) -> ((v : Lvalue.t), rename_label l))
                                 incoming);
                        }
                    | _ -> i
                  in
                  let result =
                    if Sym.is_empty i.result then i.result
                    else
                      match Sym.Tbl.find_opt vmap i.result with
                      | Some (Lvalue.Reg (n, _)) -> n
                      | _ -> i.result
                  in
                  let i = { i with result } in
                  match i.op with
                  | Ret v ->
                      (match v with
                      | Some rv -> returns := (rv, label) :: !returns
                      | None -> returns := (Lvalue.undef Ltype.Void, label) :: !returns);
                      { i with op = Br cont_label; result = Sym.empty; ty = Ltype.Void }
                  | _ -> i)
                b.insts
            in
            { label; insts })
          g.blocks
      in
      let g_entry =
        match cloned_blocks with
        | b :: _ -> b.label
        | [] -> fail "inlining an empty function @%s" callee_name
      in
      (* split the calling block *)
      let blocks =
        List.concat
          (List.mapi
             (fun bj (b : block) ->
               if bj <> bi then [ b ]
               else begin
                 let before = List.filteri (fun k _ -> k < ii) b.insts in
                 let after = List.filteri (fun k _ -> k > ii) b.insts in
                 let pre =
                   { b with insts = before @ [ Linstr.make (Br g_entry) ] }
                 in
                 let result_binding =
                   if Sym.is_empty call_inst.result then []
                   else
                     [
                       {
                         Linstr.result = call_inst.result;
                         ty = call_inst.ty;
                         op = Phi (List.rev !returns);
                         imeta = [];
                       };
                     ]
                 in
                 let cont =
                   { label = cont_label; insts = result_binding @ after }
                 in
                 (* phis in b's successors refer to b.label; after the
                    split those edges now come from cont_label *)
                 [ pre ] @ cloned_blocks @ [ cont ]
               end)
             f.blocks)
      in
      (* fix successor phis: edges that used to come from the split
         block now come from the continuation *)
      let split_label = (List.nth f.blocks bi).label in
      let term_targets =
        match List.rev (List.nth f.blocks bi).insts with
        | t :: _ -> Linstr.successors t
        | [] -> []
      in
      let blocks =
        List.map
          (fun (b : block) ->
            if not (List.mem b.label term_targets) then b
            else
              {
                b with
                insts =
                  List.map
                    (fun (i : Linstr.t) ->
                      match i.op with
                      | Phi incoming ->
                          {
                            i with
                            op =
                              Phi
                                (List.map
                                   (fun (v, l) ->
                                     ((v : Lvalue.t),
                                      if l = split_label then cont_label else l))
                                   incoming);
                          }
                      | _ -> i)
                    b.insts;
              })
          blocks
      in
      Some { f with blocks }

(** Inline all calls to module-defined functions, to a fixed point
    (bounded to keep pathological recursion from diverging). *)
let run_func (m : t) (f : func) : func * bool =
  let changed = ref false in
  let rec go f fuel =
    if fuel = 0 then f
    else
      match inline_one m f with
      | Some f' ->
          changed := true;
          go f' (fuel - 1)
      | None -> f
  in
  let f' = go f 64 in
  (f', !changed)

let run (m : t) : t =
  let funcs = List.map (fun f -> fst (run_func m f)) m.funcs in
  { m with funcs }
