(** LLVM IR instructions.

    Loop and HLS-related metadata attaches to instructions as a simple
    key/value list ([imeta]); the printer renders it in an
    [!md{key = value}] suffix.  Modern loop hints use the upstream keys
    ([llvm.loop.unroll.count], ...); the adaptor's metadata-translation
    pass replaces them with Vitis-style [_ssdm_op_Spec*] marker calls. *)

type ibinop =
  | Add | Sub | Mul | SDiv | UDiv | SRem | URem
  | Shl | LShr | AShr | And | Or | Xor

type fbinop = FAdd | FSub | FMul | FDiv | FRem

type icmp =
  | IEq | INe | ISlt | ISle | ISgt | ISge | IUlt | IUle | IUgt | IUge

type fcmp = FOeq | FOne | FOlt | FOle | FOgt | FOge | FOrd | FUno

type cast =
  | Trunc | Zext | Sext | Fptrunc | Fpext | Fptosi | Sitofp
  | Ptrtoint | Inttoptr | Bitcast

type meta = MInt of int | MStr of string

module Sym = Support.Interner

type opcode =
  | IBin of ibinop * Lvalue.t * Lvalue.t
  | FBin of fbinop * Lvalue.t * Lvalue.t
  | Icmp of icmp * Lvalue.t * Lvalue.t
  | Fcmp of fcmp * Lvalue.t * Lvalue.t
  | Alloca of Ltype.t * int  (** element type, count *)
  | Load of Ltype.t * Lvalue.t  (** loaded type, pointer *)
  | Store of Lvalue.t * Lvalue.t  (** value, pointer *)
  | Gep of {
      inbounds : bool;
      src_ty : Ltype.t;  (** pointee type the indices walk *)
      base : Lvalue.t;
      idxs : Lvalue.t list;
    }
  | Cast of cast * Lvalue.t * Ltype.t
  | Select of Lvalue.t * Lvalue.t * Lvalue.t
  | Phi of (Lvalue.t * Sym.t) list  (** (incoming value, pred label) *)
  | Call of { callee : string; ret : Ltype.t; args : Lvalue.t list }
  | ExtractValue of Lvalue.t * int list
  | InsertValue of Lvalue.t * Lvalue.t * int list  (** agg, elt, path *)
  | Freeze of Lvalue.t
  | Ret of Lvalue.t option
  | Br of Sym.t
  | CondBr of Lvalue.t * Sym.t * Sym.t
  | Switch of Lvalue.t * Sym.t * (int * Sym.t) list
  | Unreachable

type t = {
  result : Sym.t;  (** SSA name; the empty symbol when void *)
  ty : Ltype.t;  (** result type; [Void] when none *)
  op : opcode;
  imeta : (string * meta) list;
}

(** [result] is accepted as text and interned here, so construction
    sites stay string-typed; [""] means void. *)
let make ?(imeta = []) ?(result = "") ?(ty = Ltype.Void) op =
  { result = Sym.intern result; ty; op; imeta }

(** Result name as text ([""] when void). *)
let result_name i = Sym.name i.result

let has_result i = not (Sym.is_empty i.result)

let is_terminator i =
  match i.op with
  | Ret _ | Br _ | CondBr _ | Switch _ | Unreachable -> true
  | _ -> false

(** Instruction has no side effects and can be removed if unused.
    Calls are conservatively impure (intrinsic purity is refined by the
    passes that know the intrinsic table). *)
let is_pure i =
  match i.op with
  | IBin _ | FBin _ | Icmp _ | Fcmp _ | Gep _ | Cast _ | Select _ | Phi _
  | ExtractValue _ | InsertValue _ | Freeze _ ->
      true
  | Alloca _ | Load _ | Store _ | Call _ | Ret _ | Br _ | CondBr _
  | Switch _ | Unreachable ->
      false

(** Operand values of an instruction, in printing order. *)
let operands i =
  match i.op with
  | IBin (_, a, b) | FBin (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) ->
      [ a; b ]
  | Alloca _ -> []
  | Load (_, p) -> [ p ]
  | Store (v, p) -> [ v; p ]
  | Gep { base; idxs; _ } -> base :: idxs
  | Cast (_, v, _) | Freeze v -> [ v ]
  | Select (c, a, b) -> [ c; a; b ]
  | Phi incoming -> List.map fst incoming
  | Call { args; _ } -> args
  | ExtractValue (a, _) -> [ a ]
  | InsertValue (a, v, _) -> [ a; v ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []
  | Br _ -> []
  | CondBr (c, _, _) -> [ c ]
  | Switch (v, _, _) -> [ v ]
  | Unreachable -> []

(** Apply [f] to each operand without building the operand list —
    the allocation-free variant {!Findex.build} runs per operand. *)
let iter_operands f i =
  match i.op with
  | IBin (_, a, b) | FBin (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) ->
      f a;
      f b
  | Alloca _ | Br _ | Ret None | Unreachable -> ()
  | Load (_, p) -> f p
  | Store (v, p) ->
      f v;
      f p
  | Gep { base; idxs; _ } ->
      f base;
      List.iter f idxs
  | Cast (_, v, _) | Freeze v -> f v
  | Select (c, a, b) ->
      f c;
      f a;
      f b
  | Phi incoming -> List.iter (fun (v, _) -> f v) incoming
  | Call { args; _ } -> List.iter f args
  | ExtractValue (a, _) -> f a
  | InsertValue (a, v, _) ->
      f a;
      f v
  | Ret (Some v) -> f v
  | CondBr (c, _, _) -> f c
  | Switch (v, _, _) -> f v

(** Rebuild the instruction with operands mapped through [f]. *)
let map_operands f i =
  let op =
    match i.op with
    | IBin (o, a, b) -> IBin (o, f a, f b)
    | FBin (o, a, b) -> FBin (o, f a, f b)
    | Icmp (o, a, b) -> Icmp (o, f a, f b)
    | Fcmp (o, a, b) -> Fcmp (o, f a, f b)
    | Alloca _ as op -> op
    | Load (t, p) -> Load (t, f p)
    | Store (v, p) -> Store (f v, f p)
    | Gep g -> Gep { g with base = f g.base; idxs = List.map f g.idxs }
    | Cast (c, v, t) -> Cast (c, f v, t)
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Phi incoming -> Phi (List.map (fun (v, l) -> (f v, l)) incoming)
    | Call c -> Call { c with args = List.map f c.args }
    | ExtractValue (a, path) -> ExtractValue (f a, path)
    | InsertValue (a, v, path) -> InsertValue (f a, f v, path)
    | Freeze v -> Freeze (f v)
    | Ret (Some v) -> Ret (Some (f v))
    | Ret None -> Ret None
    | Br _ as op -> op
    | CondBr (c, t, e) -> CondBr (f c, t, e)
    | Switch (v, d, cases) -> Switch (f v, d, cases)
    | Unreachable -> Unreachable
  in
  { i with op }

(** Successor labels of a terminator (empty for non-terminators). *)
let successors i =
  match i.op with
  | Br l -> [ l ]
  | CondBr (_, t, e) -> [ t; e ]
  | Switch (_, d, cases) -> d :: List.map snd cases
  | _ -> []

(** Rebuild a terminator with successor labels mapped through [f]. *)
let map_successors f i =
  let op =
    match i.op with
    | Br l -> Br (f l)
    | CondBr (c, t, e) -> CondBr (c, f t, f e)
    | Switch (v, d, cases) ->
        Switch (v, f d, List.map (fun (c, l) -> (c, f l)) cases)
    | op -> op
  in
  { i with op }

let string_of_ibinop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | SDiv -> "sdiv"
  | UDiv -> "udiv" | SRem -> "srem" | URem -> "urem" | Shl -> "shl"
  | LShr -> "lshr" | AShr -> "ashr" | And -> "and" | Or -> "or"
  | Xor -> "xor"

let string_of_fbinop = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
  | FRem -> "frem"

let string_of_icmp = function
  | IEq -> "eq" | INe -> "ne" | ISlt -> "slt" | ISle -> "sle"
  | ISgt -> "sgt" | ISge -> "sge" | IUlt -> "ult" | IUle -> "ule"
  | IUgt -> "ugt" | IUge -> "uge"

let string_of_fcmp = function
  | FOeq -> "oeq" | FOne -> "one" | FOlt -> "olt" | FOle -> "ole"
  | FOgt -> "ogt" | FOge -> "oge" | FOrd -> "ord" | FUno -> "uno"

let string_of_cast = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Fptrunc -> "fptrunc" | Fpext -> "fpext" | Fptosi -> "fptosi"
  | Sitofp -> "sitofp" | Ptrtoint -> "ptrtoint" | Inttoptr -> "inttoptr"
  | Bitcast -> "bitcast"

let ibinop_of_string = function
  | "add" -> Add | "sub" -> Sub | "mul" -> Mul | "sdiv" -> SDiv
  | "udiv" -> UDiv | "srem" -> SRem | "urem" -> URem | "shl" -> Shl
  | "lshr" -> LShr | "ashr" -> AShr | "and" -> And | "or" -> Or
  | "xor" -> Xor
  | s -> invalid_arg ("Linstr.ibinop_of_string: " ^ s)

let fbinop_of_string = function
  | "fadd" -> FAdd | "fsub" -> FSub | "fmul" -> FMul | "fdiv" -> FDiv
  | "frem" -> FRem
  | s -> invalid_arg ("Linstr.fbinop_of_string: " ^ s)

let icmp_of_string = function
  | "eq" -> IEq | "ne" -> INe | "slt" -> ISlt | "sle" -> ISle
  | "sgt" -> ISgt | "sge" -> ISge | "ult" -> IUlt | "ule" -> IUle
  | "ugt" -> IUgt | "uge" -> IUge
  | s -> invalid_arg ("Linstr.icmp_of_string: " ^ s)

let fcmp_of_string = function
  | "oeq" -> FOeq | "one" -> FOne | "olt" -> FOlt | "ole" -> FOle
  | "ogt" -> FOgt | "oge" -> FOge | "ord" -> FOrd | "uno" -> FUno
  | s -> invalid_arg ("Linstr.fcmp_of_string: " ^ s)

let cast_of_string = function
  | "trunc" -> Trunc | "zext" -> Zext | "sext" -> Sext
  | "fptrunc" -> Fptrunc | "fpext" -> Fpext | "fptosi" -> Fptosi
  | "sitofp" -> Sitofp | "ptrtoint" -> Ptrtoint | "inttoptr" -> Inttoptr
  | "bitcast" -> Bitcast
  | s -> invalid_arg ("Linstr.cast_of_string: " ^ s)
