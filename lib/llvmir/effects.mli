(** Per-function memory effect summaries, propagated bottom-up over
    the call graph to a module-level footprint.

    A function's {!footprint} records, per pointer parameter and per
    module global, whether the function (or anything it transitively
    calls) may read or write that storage.  Local allocas never
    escape into a footprint.  Summaries are {e transitively closed}:
    a caller's footprint already contains every callee's effects
    translated through the call's argument binding, so inlining a call
    never grows the caller's footprint — which is what lets every pass
    declare the analysis preserved (see {!Analysis}).

    A footprint is {e open} ([fp_unknown <> []]) when the function
    touches memory the analysis cannot attribute: a call to an
    undefined (non-intrinsic) function, a load/store through an
    unresolvable pointer ([<indirect>]), or a pointer value escaping
    into memory ([<escape>]).  HLS marker intrinsics ([_ssdm_op_*],
    [llvm.*], [__mhls_*]) are effect-free by contract.

    Everything here is an over-approximation: [may read/write], never
    [must]. *)

module Sym = Support.Interner

type mode = No_access | Read | Write | Read_write

val mode_join : mode -> mode -> mode
val mode_to_string : mode -> string
val reads : mode -> bool
val writes : mode -> bool

type footprint = {
  fp_params : mode array;  (** by parameter position; scalars stay [No_access] *)
  fp_globals : mode Sym.Map.t;  (** only touched globals appear *)
  fp_unknown : string list;
      (** sorted, deduplicated reasons the footprint is open: callee
          names, [<indirect>], [<escape>]; [[]] = closed *)
}

(** No unattributable effects? *)
val closed : footprint -> bool

(** Mode of a global in a footprint ([No_access] when absent). *)
val global_mode : footprint -> Sym.t -> mode

(** Module summary: one footprint per defined function. *)
type t

(** Callee names treated as effect-free HLS markers / intrinsics. *)
val is_inert_callee : string -> bool

(** Bottom-up fixpoint over the call graph (recursion converges: the
    per-function lattice is finite and joins are monotone). *)
val summarize : Lmodule.t -> t

val footprint : t -> string -> footprint option

(** Deterministic rendering (functions in module order, globals sorted
    by name) — the golden-test format. *)
val footprint_to_string : Lmodule.func -> footprint -> string

val to_string : Lmodule.t -> t -> string
