(** May/must/no-alias oracle over {!Findex.base_pointer} root chains
    and GEP subscript deltas.

    Pointer values are classified by the {e root} their GEP/bitcast
    chain walks back to: a function parameter, a local [alloca], a
    module global, or an unresolvable definition (phi, select, load,
    call, [inttoptr]).  Two pointers with distinct {e known} roots
    never alias: allocas are fresh storage, globals are distinct
    objects, and parameters are noalias-by-construction under the HLS
    interface contract (each top-level array maps to its own memory
    port).  Pointers sharing a root are compared subscript-by-subscript
    with the same affine forms {!Memdep} uses for its delta test.

    The affine-form machinery lives here (it predates this module in
    {!Memdep}, which now re-exports it) so both the dependence analysis
    and the alias oracle agree on what a subscript means. *)

module Sym = Support.Interner

(* ------------------------------------------------------------------ *)
(* Affine forms                                                       *)
(* ------------------------------------------------------------------ *)

(** [sum of coeff * atom + konst]; [terms] sorted by atom {e name} (so
    form layout never depends on interning order) with no zero
    coefficients.  Atoms are SSA register (or global) symbols. *)
type form = { terms : (Sym.t * int) list; konst : int }

val const_form : int -> form
val atom_form : Sym.t -> form
val form_add : form -> form -> form
val form_sub : form -> form -> form
val form_scale : int -> form -> form
val coeff_of : form -> Sym.t -> int
val drop_atom : form -> Sym.t -> form
val form_to_string : form -> string

(** Expand a value into an affine form over atoms; registers with a
    non-affine definition become atoms themselves. *)
val form_of : Findex.t -> Lvalue.t -> form option

(* ------------------------------------------------------------------ *)
(* Roots                                                              *)
(* ------------------------------------------------------------------ *)

type root =
  | Rparam of int  (** function parameter (position) *)
  | Ralloca  (** locally allocated storage *)
  | Rglobal  (** module global *)
  | Runknown  (** phi/select/load/call/[inttoptr]-defined pointer *)

val root_to_string : root -> string

(** Root symbol and classification of a pointer value; [None] for
    values that are not register/global pointers (e.g. [null]).

    With [?globals], names with no local definition are globals only
    when listed and [Runknown] otherwise; without it, verified IR is
    trusted (an undefined use cannot pass {!Lverifier}), so any
    def-less root is taken as a global reference. *)
val root_of :
  ?globals:Sym.Set.t -> Findex.t -> Lvalue.t -> (Sym.t * root) option

(** Subscript forms of a pointer relative to its root: one form per
    GEP index, walking bitcasts transparently; [Some []] when the
    pointer {e is} the root; [None] when the address is not root +
    (at most) one GEP. *)
val subscripts : Findex.t -> Lvalue.t -> form list option

(* ------------------------------------------------------------------ *)
(* The oracle                                                         *)
(* ------------------------------------------------------------------ *)

type verdict = No_alias | May_alias | Must_alias

val verdict_to_string : verdict -> string

(** Do the {e base regions} of two pointers overlap?  [Must_alias]
    when they share a known root (same array, whatever the
    subscripts), [No_alias] for distinct known roots, [May_alias]
    when either root is unresolvable.  This is the question a
    dependence analysis asks before running its own subscript test. *)
val base_alias :
  ?globals:Sym.Set.t -> Findex.t -> Lvalue.t -> Lvalue.t -> verdict

(** Point-alias query: can these two addresses be equal {e at the same
    program point} (one valuation of the atoms)?  Symmetric;
    [No_alias] and [Must_alias] are mutually exclusive.  Same-root
    pointers compare subscript deltas (all-zero ⟹ must, any provably
    nonzero constant ⟹ no); GEPs walking different source types are
    never compared element-wise. *)
val alias :
  ?globals:Sym.Set.t -> Findex.t -> Lvalue.t -> Lvalue.t -> verdict
