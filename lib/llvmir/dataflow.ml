(** Generic iterative dataflow over the {!Cfg}, plus the three
    instantiations the lint rules consume: liveness, reaching
    definitions and dead-store detection.

    The framework is a plain worklist fixpoint: a problem supplies the
    direction, the lattice operations (join / equal), the boundary
    value injected at the entry (forward) or the exit blocks
    (backward), and a per-block transfer function.  Blocks are seeded
    in reverse postorder (or its reverse) so typical problems converge
    in two or three sweeps. *)

open Linstr
module Sym = Support.Interner
module SymSet = Sym.Set

type direction = Forward | Backward

type 'a problem = {
  direction : direction;
  boundary : 'a;  (** value entering the entry block / leaving exits *)
  init : 'a;  (** optimistic initial value for every block *)
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  transfer : int -> 'a -> 'a;
      (** block index -> in-value -> out-value (in flow direction) *)
}

(** [inb]/[outb] are in {e program} order: [inb.(b)] holds at block
    entry, [outb.(b)] at block exit, regardless of direction. *)
type 'a solution = { inb : 'a array; outb : 'a array }

let solve (cfg : Cfg.t) (p : 'a problem) : 'a solution =
  let n = Cfg.n_blocks cfg in
  let inb = Array.make n p.init in
  let outb = Array.make n p.init in
  if n = 0 then { inb; outb }
  else begin
    let rpo = Cfg.reverse_postorder cfg in
    let order = match p.direction with Forward -> rpo | Backward -> List.rev rpo in
    (* edges feeding a block's flow input, in flow direction *)
    let flow_preds b =
      match p.direction with
      | Forward -> cfg.Cfg.preds.(b)
      | Backward -> cfg.Cfg.succs.(b)
    in
    let at_boundary b =
      match p.direction with
      | Forward -> b = 0
      | Backward -> cfg.Cfg.succs.(b) = []
    in
    (* flow-facing views of the two arrays *)
    let get_in b = match p.direction with Forward -> inb.(b) | Backward -> outb.(b) in
    let set_in b v = match p.direction with Forward -> inb.(b) <- v | Backward -> outb.(b) <- v in
    let get_out b = match p.direction with Forward -> outb.(b) | Backward -> inb.(b) in
    let set_out b v = match p.direction with Forward -> outb.(b) <- v | Backward -> inb.(b) <- v in
    let in_work = Array.make n false in
    let work = Queue.create () in
    List.iter
      (fun b ->
        Queue.add b work;
        in_work.(b) <- true)
      order;
    while not (Queue.is_empty work) do
      let b = Queue.take work in
      in_work.(b) <- false;
      let incoming =
        let base = if at_boundary b then Some p.boundary else None in
        List.fold_left
          (fun acc pr ->
            match acc with
            | None -> Some (get_out pr)
            | Some v -> Some (p.join v (get_out pr)))
          base (flow_preds b)
      in
      (match incoming with Some v -> set_in b v | None -> ());
      let out' = p.transfer b (get_in b) in
      if not (p.equal out' (get_out b)) then begin
        set_out b out';
        List.iter
          (fun s ->
            if not in_work.(s) then begin
              Queue.add s work;
              in_work.(s) <- true
            end)
          (match p.direction with
          | Forward -> cfg.Cfg.succs.(b)
          | Backward -> cfg.Cfg.preds.(b))
      end
    done;
    { inb; outb }
  end

(* ------------------------------------------------------------------ *)
(* Liveness                                                           *)
(* ------------------------------------------------------------------ *)

type liveness = {
  live_in : SymSet.t array;
  live_out : SymSet.t array;
}

let reg_name = function Lvalue.Reg (n, _) -> Some n | _ -> None

(** Backward may-analysis over register names.  Phi operands are uses
    {e on the incoming edge}: they count as end-of-block uses of the
    predecessor, never as live-in of the phi's own block. *)
let liveness (cfg : Cfg.t) : liveness =
  let n = Cfg.n_blocks cfg in
  let use = Array.make n SymSet.empty in
  let def = Array.make n SymSet.empty in
  for b = 0 to n - 1 do
    let blk = Cfg.block cfg b in
    List.iter
      (fun (i : Linstr.t) ->
        (match i.op with
        | Phi _ -> ()  (* incoming values attributed to predecessors *)
        | _ ->
            List.iter
              (fun v ->
                match reg_name v with
                | Some r when not (SymSet.mem r def.(b)) ->
                    use.(b) <- SymSet.add r use.(b)
                | _ -> ())
              (operands i));
        if not (Sym.is_empty i.result) then def.(b) <- SymSet.add i.result def.(b))
      blk.Lmodule.insts
  done;
  (* phi-edge uses: value [v] flowing in from predecessor [l] is
     consumed at the end of [l].  It is always live-out there, and
     upward-exposed (a block use) unless [l] defines it itself. *)
  let phi_uses = Array.make n SymSet.empty in
  for b = 0 to n - 1 do
    let blk = Cfg.block cfg b in
    List.iter
      (fun (i : Linstr.t) ->
        match i.op with
        | Phi incoming ->
            List.iter
              (fun (v, l) ->
                match (reg_name v, Cfg.index_of cfg l) with
                | Some r, Some pb ->
                    phi_uses.(pb) <- SymSet.add r phi_uses.(pb);
                    if not (SymSet.mem r def.(pb)) then
                      use.(pb) <- SymSet.add r use.(pb)
                | _ -> ())
              incoming
        | _ -> ())
      blk.Lmodule.insts
  done;
  let sol =
    solve cfg
      {
        direction = Backward;
        boundary = SymSet.empty;
        init = SymSet.empty;
        join = SymSet.union;
        equal = SymSet.equal;
        transfer =
          (fun b out -> SymSet.union use.(b) (SymSet.diff out def.(b)));
      }
  in
  {
    live_in = sol.inb;
    live_out = Array.mapi (fun b s -> SymSet.union s phi_uses.(b)) sol.outb;
  }

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                               *)
(* ------------------------------------------------------------------ *)

(** A definition site: register name and its (block, instruction)
    coordinates; parameters use [(-1, -1)]. *)
module DefSite = struct
  type t = Sym.t * int * int

  let compare = compare
end

module DefSet = Set.Make (DefSite)

type reaching = { reach_in : DefSet.t array; reach_out : DefSet.t array }

(** Forward may-analysis.  Under SSA every register has one definition,
    so kill sets are empty and a definition reaches exactly the blocks
    reachable from its own — the instantiation is still useful as the
    canonical forward problem (and for diagnosing broken SSA input). *)
let reaching_definitions (cfg : Cfg.t) : reaching =
  let n = Cfg.n_blocks cfg in
  let gen = Array.make n DefSet.empty in
  for b = 0 to n - 1 do
    let blk = Cfg.block cfg b in
    List.iteri
      (fun ii (i : Linstr.t) ->
        if not (Sym.is_empty i.result) then
          gen.(b) <- DefSet.add (i.result, b, ii) gen.(b))
      blk.Lmodule.insts
  done;
  let params =
    List.fold_left
      (fun acc (p : Lmodule.param) ->
        DefSet.add (Sym.intern p.Lmodule.pname, -1, -1) acc)
      DefSet.empty cfg.Cfg.func.Lmodule.params
  in
  let sol =
    solve cfg
      {
        direction = Forward;
        boundary = params;
        init = DefSet.empty;
        join = DefSet.union;
        equal = DefSet.equal;
        transfer = (fun b inv -> DefSet.union gen.(b) inv);
      }
  in
  { reach_in = sol.inb; reach_out = sol.outb }

(* ------------------------------------------------------------------ *)
(* Dead stores                                                        *)
(* ------------------------------------------------------------------ *)

type dead_store = {
  ds_block : int;
  ds_index : int;  (** instruction index within the block *)
  ds_array : string;  (** root alloca the store writes *)
  ds_inst : Linstr.t;
}

(** Whole-array granularity backward may-read analysis: the flow value
    is the set of array roots that may still be loaded on some path.
    A store to a {e local} (alloca) array whose root is not in that set
    — and which never escapes through a call, a stored pointer or a
    return — can never be observed.

    Pointer parameters and globals are read by the caller, so they are
    in the read set at every exit and their stores are never flagged. *)
let dead_stores (cfg : Cfg.t) : dead_store list =
  let f = cfg.Cfg.func in
  let idx = Findex.build f in
  let root v = Findex.base_pointer idx v in
  (* roots whose address escapes: passed to a call, stored as a value,
     returned, cast to an integer, or folded into an aggregate *)
  let escaped = ref SymSet.empty in
  let escape v =
    match v with
    | Lvalue.Reg (_, ty) | Lvalue.Global (_, ty) when Ltype.is_pointer ty -> (
        match root v with
        | Some r -> escaped := SymSet.add r !escaped
        | None -> ())
    | _ -> ()
  in
  Lmodule.iter_insts
    (fun (i : Linstr.t) ->
      match i.op with
      | Call { args; _ } -> List.iter escape args
      | Store (v, _) -> escape v  (* the stored value, not the address *)
      | Ret (Some v) -> escape v
      | Cast (Ptrtoint, v, _) -> escape v
      | InsertValue (a, v, _) -> escape a; escape v
      | _ -> ())
    f;
  let is_local r =
    match Findex.def_instr idx r with
    | Some { op = Alloca _; _ } -> true
    | _ -> false
  in
  let n = Cfg.n_blocks cfg in
  (* per-block transfer (backward): loads and escapes add roots *)
  let reads_of_block b read_after =
    let blk = Cfg.block cfg b in
    List.fold_left
      (fun acc (i : Linstr.t) ->
        match i.op with
        | Load (_, p) -> (
            match root p with Some r -> SymSet.add r acc | None -> acc)
        | _ -> acc)
      read_after blk.Lmodule.insts
  in
  let sol =
    solve cfg
      {
        direction = Backward;
        boundary = SymSet.empty;
        init = SymSet.empty;
        join = SymSet.union;
        equal = SymSet.equal;
        transfer = reads_of_block;
      }
  in
  (* scan each block backward with the precise per-point read set *)
  let out = ref [] in
  for b = n - 1 downto 0 do
    let blk = Cfg.block cfg b in
    let insts = Array.of_list blk.Lmodule.insts in
    let read = ref sol.outb.(b) in
    for ii = Array.length insts - 1 downto 0 do
      let i = insts.(ii) in
      match i.op with
      | Load (_, p) -> (
          match root p with
          | Some r -> read := SymSet.add r !read
          | None -> ())
      | Store (_, p) -> (
          match root p with
          | Some r
            when is_local r
                 && (not (SymSet.mem r !read))
                 && not (SymSet.mem r !escaped) ->
              out :=
                {
                  ds_block = b;
                  ds_index = ii;
                  ds_array = Sym.name r;
                  ds_inst = i;
                }
                :: !out
          | _ -> ())
      | _ -> ()
    done
  done;
  !out
