(** LLVM IR values: constants, virtual registers and globals.

    Register and global names are interned symbols
    ({!Support.Interner.t}), so value equality and hashing are O(1);
    the parser and printer translate to and from text at the module
    boundary only. *)

module Sym = Support.Interner

type const =
  | CInt of int * Ltype.t
  | CFloat of float * Ltype.t
  | CNull of Ltype.t  (** null pointer of the given pointer type *)
  | CUndef of Ltype.t
  | CZero of Ltype.t  (** zeroinitializer *)

type t =
  | Reg of Sym.t * Ltype.t  (** [%name] — function-local SSA register *)
  | Global of Sym.t * Ltype.t  (** [@name]; type is the pointer type *)
  | Const of const

let reg name ty = Reg (Sym.intern name, ty)
let global name ty = Global (Sym.intern name, ty)
let ci ?(ty = Ltype.I64) v = Const (CInt (v, ty))
let ci32 v = Const (CInt (v, Ltype.I32))
let ci64 v = Const (CInt (v, Ltype.I64))
let ci1 b = Const (CInt ((if b then 1 else 0), Ltype.I1))
let cf ?(ty = Ltype.Float) v = Const (CFloat (v, ty))
let undef ty = Const (CUndef ty)

let type_of = function
  | Reg (_, ty) | Global (_, ty) -> ty
  | Const (CInt (_, ty) | CFloat (_, ty) | CNull ty | CUndef ty | CZero ty) ->
      ty

let const_to_string = function
  | CInt (v, Ltype.I1) -> if v <> 0 then "true" else "false"
  | CInt (v, _) -> string_of_int v
  | CFloat (v, _) -> Support.Float_lit.to_string v
  | CNull _ -> "null"
  | CUndef _ -> "undef"
  | CZero _ -> "zeroinitializer"

let to_string = function
  | Reg (n, _) -> "%" ^ Sym.name n
  | Global (n, _) -> "@" ^ Sym.name n
  | Const c -> const_to_string c

(** Value with its type prefix, as operands print in .ll files. *)
let typed_to_string v =
  Ltype.to_string (type_of v) ^ " " ^ to_string v

let is_const = function Const _ -> true | _ -> false

let const_int_value = function
  | Const (CInt (v, _)) -> Some v
  | _ -> None

let const_float_value = function
  | Const (CFloat (v, _)) -> Some v
  | _ -> None

(** Same SSA register? *)
let same_reg a b =
  match (a, b) with Reg (x, _), Reg (y, _) -> Sym.equal x y | _ -> false

let equal (a : t) (b : t) = a = b
