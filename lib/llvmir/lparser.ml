(** Parser for the textual form produced by {!Lprinter} (the .ll-like
    syntax, including the [!md{...}] metadata and [attrs(...)]
    extensions).  Supports exact round-tripping: for every module [m],
    [parse (print m)] is structurally equal to [m]. *)

module Sym = Support.Interner

type token =
  | Word of string
  | Int of int
  | Float of float
  | Str of string
  | Pct of string  (** [%name] *)
  | At of string  (** [@name] *)
  | Bang  (** [!] *)
  | Punct of char
  | Eof

let fail fmt = Support.Err.fail ~pass:"llvmir.parser" fmt

let tokenize (src : string) : token array =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_word_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_word c =
    is_word_start c || (c >= '0' && c <= '9') || c = '.' || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  let read_while pred =
    let start = !i in
    while !i < n && pred src.[!i] do incr i done;
    String.sub src start (!i - start)
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ';' then while !i < n && src.[!i] <> '\n' do incr i done
    else if is_word_start c then toks := Word (read_while is_word) :: !toks
    else if is_digit c || (c = '-' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      if src.[!i] = '-' then incr i;
      let _ = read_while is_digit in
      let is_float = ref false in
      if !i < n && src.[!i] = '.'
         && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        is_float := true;
        incr i;
        let _ = read_while is_digit in
        ()
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        let save = !i in
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        if !i < n && is_digit src.[!i] then begin
          is_float := true;
          let _ = read_while is_digit in
          ()
        end
        else i := save
      end;
      let lit = String.sub src start (!i - start) in
      if !is_float then toks := Float (float_of_string lit) :: !toks
      else toks := Int (int_of_string lit) :: !toks
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then fail "unterminated string"
        else
          match src.[!i] with
          | '"' -> incr i
          | '\\' ->
              (match peek 1 with
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some 't' -> Buffer.add_char buf '\t'
              | Some ch -> Buffer.add_char buf ch
              | None -> fail "unterminated escape");
              i := !i + 2;
              go ()
          | ch ->
              Buffer.add_char buf ch;
              incr i;
              go ()
      in
      go ();
      toks := Str (Buffer.contents buf) :: !toks
    end
    else if c = '%' then begin
      incr i;
      toks := Pct (read_while is_word) :: !toks
    end
    else if c = '@' then begin
      incr i;
      toks := At (read_while is_word) :: !toks
    end
    else if c = '!' then begin
      incr i;
      toks := Bang :: !toks
    end
    else begin
      incr i;
      toks := Punct c :: !toks
    end
  done;
  Array.of_list (List.rev (Eof :: !toks))

type stream = { toks : token array; mutable pos : int }

let cur s = s.toks.(s.pos)
let peek_at s k =
  if s.pos + k < Array.length s.toks then s.toks.(s.pos + k) else Eof
let advance s = s.pos <- s.pos + 1

let token_str = function
  | Word w -> w
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str st -> Printf.sprintf "%S" st
  | Pct r -> "%" ^ r
  | At a -> "@" ^ a
  | Bang -> "!"
  | Punct c -> String.make 1 c
  | Eof -> "<eof>"

let expect s tok =
  if cur s = tok then advance s
  else fail "expected %s, found %s" (token_str tok) (token_str (cur s))

let expect_punct s c = expect s (Punct c)
let eat s tok = if cur s = tok then (advance s; true) else false

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let rec parse_ty s : Ltype.t =
  let base =
    match cur s with
    | Word "void" -> advance s; Ltype.Void
    | Word "i1" -> advance s; Ltype.I1
    | Word "i8" -> advance s; Ltype.I8
    | Word "i16" -> advance s; Ltype.I16
    | Word "i32" -> advance s; Ltype.I32
    | Word "i64" -> advance s; Ltype.I64
    | Word "float" -> advance s; Ltype.Float
    | Word "double" -> advance s; Ltype.Double
    | Word "ptr" -> advance s; Ltype.Ptr None
    | Punct '[' ->
        advance s;
        let n = match cur s with
          | Int n -> advance s; n
          | t -> fail "expected array length, found %s" (token_str t)
        in
        expect s (Word "x");
        let elem = parse_ty s in
        expect_punct s ']';
        Ltype.Array (n, elem)
    | Punct '{' ->
        advance s;
        let rec go acc =
          let t = parse_ty s in
          if eat s (Punct ',') then go (t :: acc)
          else begin
            expect_punct s '}';
            List.rev (t :: acc)
          end
        in
        Ltype.Struct (go [])
    | t -> fail "expected a type, found %s" (token_str t)
  in
  let rec stars t = if eat s (Punct '*') then stars (Ltype.Ptr (Some t)) else t in
  stars base

(* ------------------------------------------------------------------ *)
(* Values                                                             *)
(* ------------------------------------------------------------------ *)

let parse_value s (ty : Ltype.t) : Lvalue.t =
  match cur s with
  | Pct r -> advance s; Lvalue.Reg (Sym.intern r, ty)
  | At g -> advance s; Lvalue.Global (Sym.intern g, ty)
  | Int v -> advance s; Lvalue.Const (Lvalue.CInt (v, ty))
  | Float v -> advance s; Lvalue.Const (Lvalue.CFloat (v, ty))
  | Word "true" -> advance s; Lvalue.Const (Lvalue.CInt (1, Ltype.I1))
  | Word "false" -> advance s; Lvalue.Const (Lvalue.CInt (0, Ltype.I1))
  | Word "null" -> advance s; Lvalue.Const (Lvalue.CNull ty)
  | Word "undef" -> advance s; Lvalue.Const (Lvalue.CUndef ty)
  | Word "zeroinitializer" -> advance s; Lvalue.Const (Lvalue.CZero ty)
  | t -> fail "expected a value, found %s" (token_str t)

(** [ty value] pair. *)
let parse_tv s =
  let ty = parse_ty s in
  parse_value s ty

(* ------------------------------------------------------------------ *)
(* Metadata and attributes                                            *)
(* ------------------------------------------------------------------ *)

let parse_imeta s : (string * Linstr.meta) list =
  if cur s = Bang && peek_at s 1 = Word "md" then begin
    advance s;
    advance s;
    expect_punct s '{';
    let rec go acc =
      if eat s (Punct '}') then List.rev acc
      else
        match cur s with
        | Word key ->
            advance s;
            expect_punct s '=';
            let v =
              match cur s with
              | Int i -> advance s; Linstr.MInt i
              | Str str -> advance s; Linstr.MStr str
              | t -> fail "expected metadata value, found %s" (token_str t)
            in
            if eat s (Punct ',') then go ((key, v) :: acc)
            else begin
              expect_punct s '}';
              List.rev ((key, v) :: acc)
            end
        | t -> fail "expected metadata key, found %s" (token_str t)
    in
    go []
  end
  else []

let parse_attrs s : (string * string) list =
  if cur s = Word "attrs" then begin
    advance s;
    expect_punct s '(';
    let rec go acc =
      if eat s (Punct ')') then List.rev acc
      else
        match cur s with
        | Word key ->
            advance s;
            expect_punct s '=';
            let v =
              match cur s with
              | Str str -> advance s; str
              | t -> fail "expected attr string, found %s" (token_str t)
            in
            if eat s (Punct ',') then go ((key, v) :: acc)
            else begin
              expect_punct s ')';
              List.rev ((key, v) :: acc)
            end
        | t -> fail "expected attr key, found %s" (token_str t)
    in
    go []
  end
  else []

(* ------------------------------------------------------------------ *)
(* Instructions                                                       *)
(* ------------------------------------------------------------------ *)

let ibinops = ["add";"sub";"mul";"sdiv";"udiv";"srem";"urem";"shl";"lshr";"ashr";"and";"or";"xor"]
let fbinops = ["fadd";"fsub";"fmul";"fdiv";"frem"]
let casts = ["trunc";"zext";"sext";"fptrunc";"fpext";"fptosi";"sitofp";"ptrtoint";"inttoptr";"bitcast"]

let parse_inst s : Linstr.t =
  let result =
    match (cur s, peek_at s 1) with
    | Pct r, Punct '=' ->
        advance s;
        advance s;
        r
    | _ -> ""
  in
  let kw =
    match cur s with
    | Word w -> advance s; w
    | t -> fail "expected instruction keyword, found %s" (token_str t)
  in
  let open Linstr in
  let op, ty =
    if List.mem kw ibinops then begin
      let ty = parse_ty s in
      let a = parse_value s ty in
      expect_punct s ',';
      let b = parse_value s ty in
      (IBin (ibinop_of_string kw, a, b), ty)
    end
    else if List.mem kw fbinops then begin
      let ty = parse_ty s in
      let a = parse_value s ty in
      expect_punct s ',';
      let b = parse_value s ty in
      (FBin (fbinop_of_string kw, a, b), ty)
    end
    else if List.mem kw casts then begin
      let v = parse_tv s in
      expect s (Word "to");
      let ty = parse_ty s in
      (Cast (cast_of_string kw, v, ty), ty)
    end
    else
      match kw with
      | "icmp" ->
          let p =
            match cur s with
            | Word w -> advance s; icmp_of_string w
            | t -> fail "expected icmp predicate, found %s" (token_str t)
          in
          let ty = parse_ty s in
          let a = parse_value s ty in
          expect_punct s ',';
          let b = parse_value s ty in
          (Icmp (p, a, b), Ltype.I1)
      | "fcmp" ->
          let p =
            match cur s with
            | Word w -> advance s; fcmp_of_string w
            | t -> fail "expected fcmp predicate, found %s" (token_str t)
          in
          let ty = parse_ty s in
          let a = parse_value s ty in
          expect_punct s ',';
          let b = parse_value s ty in
          (Fcmp (p, a, b), Ltype.I1)
      | "alloca" ->
          let ty = parse_ty s in
          let count =
            if eat s (Punct ',') then begin
              expect s (Word "i64");
              match cur s with
              | Int n -> advance s; n
              | t -> fail "expected alloca count, found %s" (token_str t)
            end
            else 1
          in
          (Alloca (ty, count), Ltype.ptr ty)
      | "load" ->
          let ty = parse_ty s in
          expect_punct s ',';
          let p = parse_tv s in
          (Load (ty, p), ty)
      | "store" ->
          let v = parse_tv s in
          expect_punct s ',';
          let p = parse_tv s in
          (Store (v, p), Ltype.Void)
      | "getelementptr" ->
          let inbounds = eat s (Word "inbounds") in
          let src_ty = parse_ty s in
          expect_punct s ',';
          let base = parse_tv s in
          let rec idxs acc =
            if eat s (Punct ',') then idxs (parse_tv s :: acc)
            else List.rev acc
          in
          let idxs = idxs [] in
          (* reconstruct the result pointer type like the builder does *)
          let rec walk ty = function
            | [] -> ty
            | idx :: rest ->
                walk (Ltype.gep_step ty (Lvalue.const_int_value idx)) rest
          in
          let pointee =
            match idxs with [] -> src_ty | _ :: rest -> walk src_ty rest
          in
          let rty =
            if Ltype.is_opaque_pointer (Lvalue.type_of base) then
              Ltype.opaque_ptr
            else Ltype.ptr pointee
          in
          (Gep { inbounds; src_ty; base; idxs }, rty)
      | "select" ->
          let c = parse_tv s in
          expect_punct s ',';
          let a = parse_tv s in
          expect_punct s ',';
          let b = parse_tv s in
          (Select (c, a, b), Lvalue.type_of a)
      | "phi" ->
          let ty = parse_ty s in
          let rec go acc =
            expect_punct s '[';
            let v = parse_value s ty in
            expect_punct s ',';
            let l =
              match cur s with
              | Pct l -> advance s; l
              | t -> fail "expected phi predecessor label, found %s" (token_str t)
            in
            expect_punct s ']';
            if eat s (Punct ',') then go ((v, Sym.intern l) :: acc)
            else List.rev ((v, Sym.intern l) :: acc)
          in
          (Phi (go []), ty)
      | "call" ->
          let ret = parse_ty s in
          let callee =
            match cur s with
            | At f -> advance s; f
            | t -> fail "expected callee, found %s" (token_str t)
          in
          expect_punct s '(';
          let rec go acc =
            if eat s (Punct ')') then List.rev acc
            else
              let v = parse_tv s in
              if eat s (Punct ',') then go (v :: acc)
              else begin
                expect_punct s ')';
                List.rev (v :: acc)
              end
          in
          (Call { callee; ret; args = go [] }, ret)
      | "extractvalue" ->
          let agg = parse_tv s in
          let rec go acc =
            if eat s (Punct ',') then
              match cur s with
              | Int i -> advance s; go (i :: acc)
              | t -> fail "expected index, found %s" (token_str t)
            else List.rev acc
          in
          let path = go [] in
          let rec walk ty = function
            | [] -> ty
            | i :: rest -> walk (Ltype.gep_step ty (Some i)) rest
          in
          (ExtractValue (agg, path), walk (Lvalue.type_of agg) path)
      | "insertvalue" ->
          let agg = parse_tv s in
          expect_punct s ',';
          let v = parse_tv s in
          let rec go acc =
            if eat s (Punct ',') then
              match cur s with
              | Int i -> advance s; go (i :: acc)
              | t -> fail "expected index, found %s" (token_str t)
            else List.rev acc
          in
          (InsertValue (agg, v, go []), Lvalue.type_of agg)
      | "freeze" ->
          let v = parse_tv s in
          (Freeze v, Lvalue.type_of v)
      | "ret" ->
          if cur s = Word "void" then begin
            advance s;
            (Ret None, Ltype.Void)
          end
          else
            let v = parse_tv s in
            (Ret (Some v), Ltype.Void)
      | "br" ->
          if cur s = Word "label" then begin
            advance s;
            match cur s with
            | Pct l -> advance s; (Br (Sym.intern l), Ltype.Void)
            | t -> fail "expected label, found %s" (token_str t)
          end
          else begin
            let c = parse_tv s in
            expect_punct s ',';
            expect s (Word "label");
            let t =
              match cur s with
              | Pct l -> advance s; l
              | t -> fail "expected label, found %s" (token_str t)
            in
            expect_punct s ',';
            expect s (Word "label");
            let e =
              match cur s with
              | Pct l -> advance s; l
              | t -> fail "expected label, found %s" (token_str t)
            in
            (CondBr (c, Sym.intern t, Sym.intern e), Ltype.Void)
          end
      | "switch" ->
          let v = parse_tv s in
          expect_punct s ',';
          expect s (Word "label");
          let d =
            match cur s with
            | Pct l -> advance s; l
            | t -> fail "expected label, found %s" (token_str t)
          in
          expect_punct s '[';
          let rec go acc =
            if eat s (Punct ']') then List.rev acc
            else begin
              let _cty = parse_ty s in
              let c =
                match cur s with
                | Int c -> advance s; c
                | t -> fail "expected case constant, found %s" (token_str t)
              in
              expect_punct s ',';
              expect s (Word "label");
              let l =
                match cur s with
                | Pct l -> advance s; l
                | t -> fail "expected label, found %s" (token_str t)
              in
              go ((c, Sym.intern l) :: acc)
            end
          in
          (Switch (v, Sym.intern d, go []), Ltype.Void)
      | "unreachable" -> (Unreachable, Ltype.Void)
      | _ -> fail "unknown instruction %s" kw
  in
  let imeta = parse_imeta s in
  { Linstr.result = Sym.intern result; ty; op; imeta }

(* ------------------------------------------------------------------ *)
(* Functions / module                                                 *)
(* ------------------------------------------------------------------ *)

let parse_func s : Lmodule.func =
  (* "define" consumed *)
  let ret_ty = parse_ty s in
  let fname =
    match cur s with
    | At f -> advance s; f
    | t -> fail "expected function name, found %s" (token_str t)
  in
  expect_punct s '(';
  let rec params acc =
    if eat s (Punct ')') then List.rev acc
    else begin
      let pty = parse_ty s in
      let pname =
        match cur s with
        | Pct r -> advance s; r
        | t -> fail "expected parameter name, found %s" (token_str t)
      in
      let pattrs = parse_attrs s in
      let p = { Lmodule.pname; pty; pattrs } in
      if eat s (Punct ',') then params (p :: acc)
      else begin
        expect_punct s ')';
        List.rev (p :: acc)
      end
    end
  in
  let params = params [] in
  let fattrs = parse_attrs s in
  expect_punct s '{';
  let rec blocks acc =
    if eat s (Punct '}') then List.rev acc
    else
      match (cur s, peek_at s 1) with
      | Word label, Punct ':' ->
          advance s;
          advance s;
          let rec insts acc2 =
            match (cur s, peek_at s 1) with
            | Punct '}', _ | Word _, Punct ':' -> List.rev acc2
            | _ -> insts (parse_inst s :: acc2)
          in
          let insts = insts [] in
          blocks ({ Lmodule.label = Sym.intern label; insts } :: acc)
      | t, _ -> fail "expected block label, found %s" (token_str t)
  in
  let blocks = blocks [] in
  { Lmodule.fname; ret_ty; params; blocks; fattrs }

let parse_module (src : string) : Lmodule.t =
  let s = { toks = tokenize src; pos = 0 } in
  let funcs = ref [] in
  let globals = ref [] in
  let decls = ref [] in
  let rec go () =
    match cur s with
    | Eof -> ()
    | Word "define" ->
        advance s;
        funcs := parse_func s :: !funcs;
        go ()
    | Word "declare" ->
        advance s;
        let dret = parse_ty s in
        let dname =
          match cur s with
          | At f -> advance s; f
          | t -> fail "expected declared name, found %s" (token_str t)
        in
        expect_punct s '(';
        let rec args acc =
          if eat s (Punct ')') then List.rev acc
          else
            let t = parse_ty s in
            if eat s (Punct ',') then args (t :: acc)
            else begin
              expect_punct s ')';
              List.rev (t :: acc)
            end
        in
        decls := { Lmodule.dname; dret; dargs = args [] } :: !decls;
        go ()
    | At gname ->
        advance s;
        expect_punct s '=';
        let gconst = eat s (Word "constant") in
        if not gconst then expect s (Word "global");
        let gty = parse_ty s in
        let ginit =
          match cur s with
          | Word "zeroinitializer" -> advance s; Some (Lvalue.CZero gty)
          | Int v -> advance s; Some (Lvalue.CInt (v, gty))
          | Float v -> advance s; Some (Lvalue.CFloat (v, gty))
          | Word "undef" -> advance s; Some (Lvalue.CUndef gty)
          | Word "null" -> advance s; Some (Lvalue.CNull gty)
          | _ -> None
        in
        globals := { Lmodule.gname; gty; ginit; gconst } :: !globals;
        go ()
    | t -> fail "unexpected top-level token %s" (token_str t)
  in
  go ();
  {
    Lmodule.mname = "parsed";
    funcs = List.rev !funcs;
    globals = List.rev !globals;
    decls = !decls;
  }
