(** Per-function read/write effect summaries over parameters and
    globals, closed transitively over the call graph.  See the
    interface for the contract. *)

open Linstr
module Sym = Support.Interner

type mode = No_access | Read | Write | Read_write

let mode_join a b =
  match (a, b) with
  | No_access, m | m, No_access -> m
  | Read, Read -> Read
  | Write, Write -> Write
  | _ -> Read_write

let mode_to_string = function
  | No_access -> "none"
  | Read -> "read"
  | Write -> "write"
  | Read_write -> "readwrite"

let reads = function Read | Read_write -> true | _ -> false
let writes = function Write | Read_write -> true | _ -> false

type footprint = {
  fp_params : mode array;
  fp_globals : mode Sym.Map.t;
  fp_unknown : string list;
}

let closed fp = fp.fp_unknown = []

let global_mode fp g =
  Option.value ~default:No_access (Sym.Map.find_opt g fp.fp_globals)

type t = { by_func : (string * footprint) list (* module order *) }

(* The marker/intrinsic families the adaptor emits and the lowering
   uses are pure annotations: they read no memory the design owns.
   (Same name families as Adaptor_markers.is_marker; duplicated here
   because llvmir sits below the adaptor layer.) *)
let is_inert_callee name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  has_prefix "_ssdm_op_" || has_prefix "llvm." || has_prefix "__mhls_"

let empty_fp nparams =
  { fp_params = Array.make nparams No_access; fp_globals = Sym.Map.empty;
    fp_unknown = [] }

let fp_equal a b =
  a.fp_params = b.fp_params
  && Sym.Map.equal ( = ) a.fp_globals b.fp_globals
  && a.fp_unknown = b.fp_unknown

let is_pointer (v : Lvalue.t) =
  match Lvalue.type_of v with Ltype.Ptr _ -> true | _ -> false

(** One scan of [f] under the current callee summaries.  Monotone in
    [summaries], so iterating to a fixpoint is sound.  [idx] must be
    [f]'s index — the caller builds it once and reuses it across
    re-scans. *)
let scan (globals : Sym.Set.t) (summaries : (string, footprint) Hashtbl.t)
    (idx : Findex.t) (f : Lmodule.func) : footprint =
  let params = Array.make (List.length f.Lmodule.params) No_access in
  let gmap = ref Sym.Map.empty in
  let unknown = ref [] in
  let add_unknown why = unknown := why :: !unknown in
  let join_global g m =
    gmap :=
      Sym.Map.update g
        (function None -> Some m | Some m0 -> Some (mode_join m0 m))
        !gmap
  in
  let touch md v =
    match Alias.root_of ~globals idx v with
    | Some (_, Alias.Rparam i) -> params.(i) <- mode_join params.(i) md
    | Some (g, Alias.Rglobal) -> join_global g md
    | Some (_, Alias.Ralloca) -> ()  (* local storage: not a footprint *)
    | Some (_, Alias.Runknown) | None -> add_unknown "<indirect>"
  in
  Lmodule.iter_insts
    (fun (i : Linstr.t) ->
      match i.op with
      | Load (_, p) -> touch Read p
      | Store (v, p) ->
          touch Write p;
          (* a pointer value written to memory escapes attribution *)
          if is_pointer v then (
            match Alias.root_of ~globals idx v with
            | Some (_, (Alias.Rparam _ | Alias.Rglobal | Alias.Runknown)) ->
                add_unknown "<escape>"
            | Some (_, Alias.Ralloca) | None -> ())
      | Call { callee; args; _ } ->
          if is_inert_callee callee then ()
          else (
            match Hashtbl.find_opt summaries callee with
            | None -> add_unknown callee  (* extern / declaration *)
            | Some cf ->
                gmap :=
                  Sym.Map.union
                    (fun _ a b -> Some (mode_join a b))
                    !gmap cf.fp_globals;
                unknown := cf.fp_unknown @ !unknown;
                List.iteri
                  (fun k arg ->
                    let md =
                      if k < Array.length cf.fp_params then cf.fp_params.(k)
                      else No_access
                    in
                    if md <> No_access then touch md arg)
                  args)
      | _ -> ())
    f;
  {
    fp_params = params;
    fp_globals = !gmap;
    fp_unknown = List.sort_uniq compare !unknown;
  }

let summarize (m : Lmodule.t) : t =
  let globals =
    List.fold_left
      (fun s (g : Lmodule.global) -> Sym.Set.add (Sym.intern g.Lmodule.gname) s)
      Sym.Set.empty m.Lmodule.globals
  in
  let tbl : (string, footprint) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Lmodule.func) ->
      Hashtbl.replace tbl f.Lmodule.fname
        (empty_fp (List.length f.Lmodule.params)))
    m.Lmodule.funcs;
  (* Worklist iteration to the least fixpoint: every quantity only
     grows and the lattice is finite (modes per slot, reasons drawn
     from callee names plus two sentinels), so this terminates — and
     the fixpoint is unique, so the scan order does not matter.  Each
     function's index is built once and reused across re-scans, and a
     function is re-scanned only when a callee's summary grew: a
     module with no internal calls settles in exactly one scan per
     function instead of a no-change confirmation sweep over
     everything. *)
  let func_of : (string, Lmodule.func) Hashtbl.t = Hashtbl.create 16 in
  let idx_of : (string, Findex.t) Hashtbl.t = Hashtbl.create 16 in
  let callers : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Lmodule.func) ->
      Hashtbl.replace func_of f.Lmodule.fname f;
      Hashtbl.replace idx_of f.Lmodule.fname (Findex.build f);
      Lmodule.iter_insts
        (fun (i : Linstr.t) ->
          match i.op with
          | Call { callee; _ } when Hashtbl.mem tbl callee ->
              let cs =
                Option.value ~default:[] (Hashtbl.find_opt callers callee)
              in
              if not (List.mem f.Lmodule.fname cs) then
                Hashtbl.replace callers callee (f.Lmodule.fname :: cs)
          | _ -> ())
        f)
    m.Lmodule.funcs;
  let queue = Queue.create () in
  let queued : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let enqueue fn =
    if not (Hashtbl.mem queued fn) then begin
      Hashtbl.replace queued fn ();
      Queue.push fn queue
    end
  in
  List.iter (fun (f : Lmodule.func) -> enqueue f.Lmodule.fname) m.Lmodule.funcs;
  while not (Queue.is_empty queue) do
    let fn = Queue.pop queue in
    Hashtbl.remove queued fn;
    let f = Hashtbl.find func_of fn in
    let fp = scan globals tbl (Hashtbl.find idx_of fn) f in
    if not (fp_equal fp (Hashtbl.find tbl fn)) then begin
      Hashtbl.replace tbl fn fp;
      List.iter enqueue
        (Option.value ~default:[] (Hashtbl.find_opt callers fn))
    end
  done;
  {
    by_func =
      List.map
        (fun (f : Lmodule.func) ->
          (f.Lmodule.fname, Hashtbl.find tbl f.Lmodule.fname))
        m.Lmodule.funcs;
  }

let footprint (t : t) (fname : string) : footprint option =
  List.assoc_opt fname t.by_func

let footprint_to_string (f : Lmodule.func) (fp : footprint) : string =
  let param_strs =
    List.concat
      (List.mapi
         (fun i (p : Lmodule.param) ->
           if fp.fp_params.(i) = No_access then []
           else
             [ Printf.sprintf "%s:%s" p.Lmodule.pname
                 (mode_to_string fp.fp_params.(i)) ])
         f.Lmodule.params)
  in
  let global_strs =
    Sym.Map.bindings fp.fp_globals
    |> List.sort (fun (a, _) (b, _) -> Sym.compare_name a b)
    |> List.map (fun (g, md) ->
           Printf.sprintf "%s:%s" (Sym.name g) (mode_to_string md))
  in
  Printf.sprintf "%s: params [%s] globals [%s] unknown [%s]" f.Lmodule.fname
    (String.concat " " param_strs)
    (String.concat " " global_strs)
    (String.concat " " fp.fp_unknown)

let to_string (m : Lmodule.t) (t : t) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun (f : Lmodule.func) ->
      match footprint t f.Lmodule.fname with
      | Some fp ->
          Buffer.add_string b (footprint_to_string f fp);
          Buffer.add_char b '\n'
      | None -> ())
    m.Lmodule.funcs;
  Buffer.contents b
