(** LLVM-style analysis manager: function-level analyses computed at
    most once per (function, version), invalidated between passes
    according to each pass's declared preserve set.

    A cached result is returned only when it was computed for (or
    rebased onto) the {e physically identical} function value being
    queried, so stale analyses can never leak across an undeclared
    rewrite.  Queries report [stage:"analysis"] tracing events named
    ["<kind>:hit"] / ["<kind>:compute"]. *)

type kind = Findex | Cfg | Dominance | Loop_info | Effects

val kind_name : kind -> string

(** The manager.  One instance lives for one {!Pass.run_pipeline}
    invocation (or one standalone pass run). *)
type t

val create : ?trace:Support.Tracing.hook -> unit -> t

(** Query front doors.  With [?am] the result is cached in the
    manager; without, they fall back to a plain one-off build, so pass
    implementations can thread their optional manager straight
    through. *)

val findex : ?am:t -> Lmodule.func -> Findex.t
val cfg : ?am:t -> Lmodule.func -> Cfg.t
val dominance : ?am:t -> Lmodule.func -> Dominance.t
val loop_info : ?am:t -> Lmodule.func -> Loop_info.t

(** Module-level {!Effects} summary, cached for exactly the queried
    module value.  Unlike the structural analyses, the preserve
    contract for [Effects] is {e conservative over-approximation}, not
    structural identity: a preserved summary may be strictly larger
    than one recomputed from the transformed module, and every
    consumer ({!Parsafe}, lint) treats it as may-information. *)
val effects : ?am:t -> Lmodule.t -> Effects.t

(** [keep am ~preserves m] — called after a pass returned [m]: rebase
    the preserved analyses onto the new function values, drop all
    others, and forget functions that disappeared.  Functions the pass
    left physically untouched keep their whole cache.  The module-
    level [Effects] summary is re-pointed at [m] when preserved and
    dropped otherwise. *)
val keep : t -> preserves:kind list -> Lmodule.t -> unit
