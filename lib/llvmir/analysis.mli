(** LLVM-style analysis manager: function-level analyses computed at
    most once per (function, version), invalidated between passes
    according to each pass's declared preserve set.

    A cached result is returned only when it was computed for (or
    rebased onto) the {e physically identical} function value being
    queried, so stale analyses can never leak across an undeclared
    rewrite.  Queries report [stage:"analysis"] tracing events named
    ["<kind>:hit"] / ["<kind>:compute"]. *)

type kind = Findex | Cfg | Dominance | Loop_info | Effects

val kind_name : kind -> string

(** The manager.  One instance lives for one {!Pass.run_pipeline}
    invocation (or one standalone pass run). *)
type t

val create : ?trace:Support.Tracing.hook -> unit -> t

(** Query front doors.  With [?am] the result is cached in the
    manager; without, they fall back to a plain one-off build, so pass
    implementations can thread their optional manager straight
    through. *)

val findex : ?am:t -> Lmodule.func -> Findex.t
val cfg : ?am:t -> Lmodule.func -> Cfg.t
val dominance : ?am:t -> Lmodule.func -> Dominance.t
val loop_info : ?am:t -> Lmodule.func -> Loop_info.t

(** Module-level {!Effects} summary, cached for exactly the queried
    module value.  Unlike the structural analyses, the preserve
    contract for [Effects] is {e conservative over-approximation}, not
    structural identity: a preserved summary may be strictly larger
    than one recomputed from the transformed module, and every
    consumer ({!Parsafe}, lint) treats it as may-information. *)
val effects : ?am:t -> Lmodule.t -> Effects.t

(** [keep am ~preserves m] — called after a pass returned [m]: rebase
    the preserved analyses onto the new function values, drop all
    others, and forget functions that disappeared.  Functions the pass
    left physically untouched keep their whole cache.  The module-
    level [Effects] summary is re-pointed at [m] when preserved and
    dropped otherwise. *)
val keep : t -> preserves:kind list -> Lmodule.t -> unit

(** [seed_findex am f idx] — hand the manager an index a pass already
    built for its {e output} function [f] (DCE indexes the compacted
    arena it just wrote).  The next {!keep} installs it for the entry
    whose function is physically [f]; a {!findex} query landing before
    that is served the seed directly.  [idx] must equal what
    [Findex.build f] would compute — the pass pairs
    {!Iarena.compact} with {!Findex.of_arena} to guarantee it. *)
val seed_findex : t -> Lmodule.func -> Findex.t -> unit

(** Incremental-verification bookkeeping, used by {!Lverifier}.
    [verified am f] is true only when the verifier accepted exactly
    the physical value [f] under this manager; any cache reset for the
    function's name (a new value seen by a query or {!keep}) clears
    the flag.  [note_signatures am m] records the callable-signature
    environment (functions and declarations) and returns whether it
    differs from the previously recorded one — the verifier re-checks
    call sites of otherwise-untouched functions exactly when it does. *)

val verified : t -> Lmodule.func -> bool
val mark_verified : t -> Lmodule.func -> unit
val note_signatures : t -> Lmodule.t -> bool
