(** Packed struct-of-arrays encoding of one function body.

    Every instruction of a function is a row across flat arrays:
    an opcode word (tag, sub-opcode, flags), the result symbol, a span
    [op_off, op_off+op_len) into a shared operand pool, per-opcode
    scalar payload ([aux0]/[aux1]: interned type, callee string or
    extra-pool offsets), successor/incoming labels in a symbol pool,
    switch case values and aggregate paths in an int pool, and block
    membership.  Rows are in layout order, so intra-block ordering is
    index comparison and a block is a contiguous span.

    The arena is built once per {!Findex.build} and is the storage hot
    passes iterate: DCE, CSE, constant folding and GEP
    canonicalisation walk int arrays and the operand pool without
    touching the boxed [Linstr.t] records.  Boxed instructions are
    materialised only at the pass boundary ({!instr}, {!to_blocks}):
    rows never mutated come back physically identical to the input,
    so an unchanged function round-trips with zero allocation and
    byte-identical printing.

    Mutation discipline: a pass may {!kill} rows and rewrite operands
    ({!set_opnd}, span replacement) {e only} when it will return a new
    function value built from this arena — the analysis manager keys
    caches by physical function identity, so the mutated arena is
    unreachable from the stale function value afterwards. *)

module Sym = Support.Interner

type t

(** Encode a function body.  Operand [Lvalue.t] values are shared into
    the pool (not copied); instruction records are retained for
    identity materialisation. *)
val of_func : Lmodule.func -> t

(** {1 Shape} *)

val n_instrs : t -> int
val n_blocks : t -> int

(** Rows of block [bi] are [block_start..block_stop - 1]. *)
val block_start : t -> int -> int

val block_stop : t -> int -> int
val block_label : t -> int -> Sym.t

(** Block number of row [k]. *)
val block_of : t -> int -> int

(** {1 Opcode tags}

    The opcode word packs [tag lor (sub lsl 8)] plus flag bits; [sub]
    numbers the sub-opcode ([Linstr.ibinop] etc.) in declaration
    order.  [Ret] uses [sub = 1] when it carries a value. *)

val tag_ibin : int
val tag_fbin : int
val tag_icmp : int
val tag_fcmp : int
val tag_alloca : int
val tag_load : int
val tag_store : int
val tag_gep : int
val tag_cast : int
val tag_select : int
val tag_phi : int
val tag_call : int
val tag_extractvalue : int
val tag_insertvalue : int
val tag_freeze : int
val tag_ret : int
val tag_br : int
val tag_condbr : int
val tag_switch : int
val tag_unreachable : int

val tag : t -> int -> int
val sub : t -> int -> int

(** Decoded sub-opcode of a row (valid for the matching tag only). *)
val ibinop : t -> int -> Linstr.ibinop

val fbinop : t -> int -> Linstr.fbinop
val icmp : t -> int -> Linstr.icmp
val fcmp : t -> int -> Linstr.fcmp
val cast : t -> int -> Linstr.cast

(** Full opcode word (tag, sub and flag bits) — a ready-made first key
    component for value numbering. *)
val opword : t -> int -> int

val inbounds : t -> int -> bool

(** Mirrors {!Linstr.is_pure} on the packed tag. *)
val pure_tag : int -> bool

(** {1 Row reads} *)

val result : t -> int -> Sym.t
val result_ty : t -> int -> Ltype.t
val op_off : t -> int -> int
val op_len : t -> int -> int

(** Per-opcode scalar payload: interned-type index for
    [Alloca]/[Load]/[Cast]/[Gep], callee-string index and return-type
    index for [Call], alloca count, extra-pool offset and case count
    for [Switch]/[ExtractValue]/[InsertValue]. *)
val aux0 : t -> int -> int

val aux1 : t -> int -> int
val ty_of_ix : t -> int -> Ltype.t
val callee : t -> int -> string

(** Int pool read (switch case values, aggregate paths). *)
val xt : t -> int -> int

(** Label pool: [label_off] is the row's span start; [Br] has one
    label, [CondBr] two, [Switch] the default then one per case, [Phi]
    one per incoming operand. *)
val label_off : t -> int -> int

val label_at : t -> int -> Sym.t

(** {1 Operand pool} *)

val pool_len : t -> int

(** Operand value at pool slot [s]. *)
val opnd : t -> int -> Lvalue.t

(** Packed identity key of slot [s]: register and global operands key
    by symbol, constants by interned constant-pool index (so equal
    keys mean structurally equal typed operands — SSA gives each
    register one type).  Constant interning is lazy and memoised per
    slot. *)
val opnd_key : t -> int -> int

(** {!opnd_key} for a value not read from the pool (a substitution
    result). *)
val key_of_value : t -> Lvalue.t -> int

(** {1 Flags and mutation} *)

val is_dead : t -> int -> bool
val kill : t -> int -> unit
val is_dirty : t -> int -> bool

(** Replace the operand at absolute slot [s] of row [k]; marks the row
    dirty so materialisation decodes it. *)
val set_opnd : t -> int -> int -> Lvalue.t -> unit

(** Append a copy of slot [s] to the pool (span surgery). *)
val push_copy : t -> int -> unit

(** Point row [k] at a freshly pushed span; marks it dirty. *)
val set_span : t -> int -> off:int -> len:int -> unit

val set_aux0 : t -> int -> int -> unit
val set_inbounds : t -> int -> bool -> unit

(** {1 Materialisation} *)

(** Boxed instruction for row [k]: the retained input record when the
    row is clean, else a decode of the packed row (memoised, clearing
    the dirty bit). *)
val instr : t -> int -> Linstr.t

(** Decode row [k] purely from the packed arrays and pools — never the
    retained record.  Test hook for the round-trip law. *)
val decode_packed : t -> int -> Linstr.t

(** Blocks with dead rows dropped; clean rows come back physically
    identical to the input instructions. *)
val to_blocks : t -> Lmodule.block list

val live_count : t -> int

(** Copy with dead rows dropped and dirty rows materialised; pools are
    shared (append-only).  Pairs with {!Findex.of_arena} to seed the
    analysis cache for a pass's output function. *)
val compact : t -> t

(** Structural invariants (spans in bounds, layout order total,
    consistent block table); [Error] describes the first violation. *)
val check : t -> (unit, string) result
