(** Dominator tree and dominance frontiers via the Cooper–Harvey–Kennedy
    iterative algorithm.  Drives mem2reg's phi placement and the SSA
    verifier's dominance checks. *)

type t = {
  cfg : Cfg.t;
  idom : int array;  (** immediate dominator; [idom.(entry) = entry];
                         [-1] for unreachable blocks *)
  rpo_number : int array;
  children : int list array;  (** dominator-tree children *)
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_number = Array.make n (-1) in
  List.iteri (fun k i -> rpo_number.(i) <- k) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_number.(!a) > rpo_number.(!b) do a := idom.(!a) done;
      while rpo_number.(!b) > rpo_number.(!a) do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        if i <> 0 then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) cfg.Cfg.preds.(i)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(i) <> new_idom then begin
                idom.(i) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let children = Array.make n [] in
  for i = n - 1 downto 1 do
    if idom.(i) <> -1 then children.(idom.(i)) <- i :: children.(idom.(i))
  done;
  { cfg; idom; rpo_number; children }

(** Rebase a cached dominator tree onto a rewritten function value.
    Only valid when the rewrite preserved the CFG shape — the
    analysis-manager preserve contract. *)
let rebase t (f : Lmodule.func) = { t with cfg = Cfg.rebase t.cfg f }

(** [dominates t a b]: does block [a] dominate block [b]?  (Reflexive.) *)
let dominates t a b =
  let rec go b = if b = a then true else if b = 0 then false else go t.idom.(b) in
  if t.idom.(b) = -1 then false else go b

(** Dominance frontier per block (Cooper et al. fig. 5). *)
let frontiers (t : t) : int list array =
  let n = Cfg.n_blocks t.cfg in
  let df = Array.make n [] in
  for i = 0 to n - 1 do
    let preds = t.cfg.Cfg.preds.(i) in
    if List.length preds >= 2 && t.idom.(i) <> -1 then
      List.iter
        (fun p ->
          if t.idom.(p) <> -1 then begin
            let runner = ref p in
            while !runner <> t.idom.(i) do
              if not (List.mem i df.(!runner)) then
                df.(!runner) <- i :: df.(!runner);
              runner := t.idom.(!runner)
            done
          end)
        preds
  done;
  df
