(** Pass manager for LLVM-level transforms: named passes, pipelines,
    optional verification between passes, per-pass timing, and an
    {!Analysis} manager shared across the pipeline.

    Every pass declares which analyses it {e preserves}; after the
    pass runs, {!Analysis.keep} rebases exactly those onto the new
    function values and drops the rest.  Passes (and the verifier)
    query the shared manager instead of rebuilding analyses, so a
    CFG-preserving stretch of the pipeline computes the CFG, dominator
    tree and loop nest once.  A pass that preserves nothing must
    declare [preserves = []] — over-declaring breaks the rebase
    contract documented on {!Cfg.rebase}.

    Passes that transform one function at a time additionally expose
    their per-function entry as [fn_run]; {!run_pipeline_parallel}
    fans such a pass tail out across worker domains when {!Parsafe}
    proves the module race-free. *)

type pass = {
  name : string;
  preserves : Analysis.kind list;
      (** analyses still valid (after rebase) on this pass's output *)
  run : Analysis.t -> Lmodule.t -> Lmodule.t;
  fn_run : (Analysis.t -> Lmodule.func -> Lmodule.func) option;
      (** function-local entry ([run] must equal mapping it over the
          module's functions); [None] for module-level passes *)
}

(* Inlining and CFG simplification restructure blocks, so they
   preserve no structural analysis.  The scalar passes rewrite
   instructions inside a fixed block skeleton: block labels, order and
   terminator targets survive, so CFG-shaped analyses remain valid.
   None of them preserves the function index — any instruction rewrite
   moves the arena.  Every pass preserves the module-level effect
   summary: footprints are transitively-closed over-approximations, and
   a transform can only remove, merge or move accesses (inline included
   — the caller summary already contains the inlined callee's
   effects). *)
let cfg_shape =
  [ Analysis.Cfg; Analysis.Dominance; Analysis.Loop_info; Analysis.Effects ]

let inline =
  { name = "inline"; preserves = [ Analysis.Effects ];
    run = (fun _ m -> Opt_inline.run m); fn_run = None }

let mem2reg =
  { name = "mem2reg"; preserves = cfg_shape;
    run = (fun am m -> Opt_mem2reg.run ~am m);
    fn_run = Some (fun am f -> fst (Opt_mem2reg.run_func ~am f)) }

let dce =
  { name = "dce"; preserves = cfg_shape;
    run = (fun am m -> Opt_dce.run ~am m);
    fn_run = Some (fun am f -> fst (Opt_dce.run_func ~am f)) }

let constfold =
  { name = "constfold"; preserves = cfg_shape;
    run = (fun am m -> Opt_constfold.run ~am m);
    fn_run = Some (fun am f -> fst (Opt_constfold.run_func ~am f)) }

let cse =
  { name = "cse"; preserves = cfg_shape;
    run = (fun am m -> Opt_cse.run ~am m);
    fn_run = Some (fun am f -> fst (Opt_cse.run_func ~am f)) }

let simplifycfg =
  { name = "simplifycfg"; preserves = [ Analysis.Effects ];
    run = (fun am m -> Opt_simplifycfg.run ~am m);
    fn_run = Some (fun am f -> fst (Opt_simplifycfg.run_func ~am f)) }

let licm =
  { name = "licm"; preserves = cfg_shape;
    run = (fun am m -> Opt_licm.run ~am m);
    fn_run = Some (fun am f -> fst (Opt_licm.run_func ~am f)) }

(** The -O2-flavoured cleanup pipeline both flows run before HLS.
    Inlining comes first: Vitis flattens the design into the top
    function before anything else. *)
let default_pipeline =
  [ inline; mem2reg; constfold; cse; licm; dce; simplifycfg; constfold; dce ]

type timing = { pass_name : string; seconds : float }

(** Run a pipeline.  With [~verify:true] (default) the module is
    verified once after the final pass — the verifier's checks are
    properties of the output, so one end-of-pipeline run rejects
    exactly what per-pass runs would, at a fraction of the cost (the
    incremental verifier re-checks only functions that still differ
    from their last accepted value).  [~verify_each:true] restores
    verification after {e every} pass, the debugging mode that
    attributes a miscompile to the pass that introduced it.  [?trace]
    receives one {!Support.Tracing.event} per pass (stage ["llvm-opt"])
    plus one per analysis query (stage ["analysis"], pass
    ["<kind>:hit"] / ["<kind>:compute"]).  Returns the transformed
    module and per-pass timings. *)
let run_pipeline ?(verify = true) ?(verify_each = false)
    ?(trace = Support.Tracing.null) (passes : pass list) (m : Lmodule.t) :
    Lmodule.t * timing list =
  let am = Analysis.create ~trace () in
  let timings = ref [] in
  (* the instruction counts and GC deltas exist only for the trace
     event; under the null hook the walks and stat reads are pure
     overhead on the hot path, so skip them entirely *)
  let traced = trace != Support.Tracing.null in
  let m' =
    List.fold_left
      (fun m p ->
        let before = if traced then Lmodule.instr_count m else 0 in
        let g0 = if traced then Some (Gc.quick_stat ()) else None in
        let t0 = Sys.time () in
        let m' = p.run am m in
        let t1 = Sys.time () in
        timings := { pass_name = p.name; seconds = t1 -. t0 } :: !timings;
        Analysis.keep am ~preserves:p.preserves m';
        if verify && verify_each then Lverifier.verify_module ~am m';
        if traced then begin
          let g1 = Gc.quick_stat () in
          let g0 = Option.get g0 in
          trace
            (Support.Tracing.with_alloc
               ~minor_words:(g1.Gc.minor_words -. g0.Gc.minor_words)
               ~major_words:(g1.Gc.major_words -. g0.Gc.major_words)
               (Support.Tracing.event ~stage:"llvm-opt" ~pass:p.name
                  ~seconds:(t1 -. t0) ~before
                  ~after:(Lmodule.instr_count m')))
        end;
        m')
      m passes
  in
  if verify && (not verify_each) && passes <> [] then
    Lverifier.verify_module ~am m';
  (m', List.rev !timings)

(* ------------------------------------------------------------------ *)
(* Parallel-by-function execution                                     *)
(* ------------------------------------------------------------------ *)

(** How to fan function-local work out.  Supplied by the caller (the
    driver's domain pool) so this library stays below the driver in
    the layering.  [map] must preserve input order and run [f] exactly
    once per element; [now] is a wall clock for worker-side timings
    ([Sys.time] measures whole-process CPU and would over-count under
    parallelism). *)
type fanout = {
  jobs : int;
  now : unit -> float;
  map :
    (Lmodule.func -> Lmodule.func * timing list) ->
    Lmodule.func list ->
    (Lmodule.func * timing list) list;
}

(** Inline fanout: no parallelism, [Sys.time] clock.  Useful as a
    deterministic stand-in where no pool is available. *)
let inline_fanout : fanout =
  { jobs = 1; now = Sys.time; map = (fun f xs -> List.map f xs) }

type par_status =
  | Ran_parallel of int  (** function-local tail fanned out over this many functions *)
  | Fell_back of string  (** sequential, and why *)

let par_status_to_string = function
  | Ran_parallel n -> Printf.sprintf "parallel (%d functions)" n
  | Fell_back why -> Printf.sprintf "sequential (%s)" why

(** Longest suffix of the pipeline in which every pass is
    function-local, and the prologue before it. *)
let split_func_local (passes : pass list) : pass list * pass list =
  let rec go tail = function
    | p :: rest when p.fn_run <> None -> go (p :: tail) rest
    | rest -> (List.rev rest, tail)
  in
  go [] (List.rev passes)

(** Like {!run_pipeline}, but when {!Parsafe} proves the module's
    function footprints race-free, the function-local pass tail runs
    per function on [fanout] (module-level prologue passes — inlining —
    stay sequential).  Output is byte-identical to the sequential
    pipeline for any worker count because every tail pass is function-
    local and [fanout.map] preserves order; the CI smoke test and the
    test suite assert exactly that.  On an [Unsafe] verdict (or a
    degenerate module/fanout) the whole pipeline runs sequentially and
    the status says why.

    Worker domains use fresh private {!Analysis} managers and the null
    trace hook (user trace hooks are not required to be domain-safe);
    the coordinator emits one aggregated ["llvm-opt"] event for the
    parallel tail. *)
let run_pipeline_parallel ?(verify = true) ?(trace = Support.Tracing.null)
    ~(fanout : fanout) (passes : pass list) (m : Lmodule.t) :
    Lmodule.t * timing list * par_status =
  let fallback reason =
    let m, ts = run_pipeline ~verify ~trace passes m in
    (m, ts, Fell_back reason)
  in
  if fanout.jobs <= 1 then fallback "jobs <= 1"
  else if List.length m.Lmodule.funcs <= 1 then
    fallback "module has at most one function"
  else
    let eff = Effects.summarize m in
    match Parsafe.check ~effects:eff m with
    | Parsafe.Unsafe cs ->
        fallback
          (String.concat "; " (List.map Parsafe.conflict_to_string cs))
    | Parsafe.Safe -> (
        match split_func_local passes with
        | _, [] -> fallback "no function-local pass tail"
        | prologue, tail ->
            (* no prologue verify: every function's final value is
               verified once in its worker below, which covers the
               prologue's output too *)
            let m1, ts1 = run_pipeline ~verify:false ~trace prologue m in
            (* Workers verify their function once after the whole tail,
               against [m1] (tail passes are function-local, so callee
               signatures never move): per-pass whole-module
               re-verification is the sequential path's attribution
               aid, and paying it n times per pass here would cost more
               than the fan-out wins back.  Each arena-backed pass
               seeds its output's function index ({!Analysis.seed_findex},
               installed by [keep] below), so the scoped verification
               reads the flat storage the passes wrote instead of
               re-materialising and re-indexing the function. *)
            let worker (f : Lmodule.func) =
              let am = Analysis.create () in
              let timings = ref [] in
              let f =
                List.fold_left
                  (fun f p ->
                    let fr = Option.get p.fn_run in
                    let t0 = fanout.now () in
                    let f' = fr am f in
                    let t1 = fanout.now () in
                    timings :=
                      { pass_name = p.name; seconds = t1 -. t0 } :: !timings;
                    Analysis.keep am ~preserves:p.preserves
                      { m1 with Lmodule.funcs = [ f' ] };
                    f')
                  f tail
              in
              if verify then Lverifier.verify_func ~am m1 f;
              (f, List.rev !timings)
            in
            let traced = trace != Support.Tracing.null in
            let g0 = if traced then Some (Gc.quick_stat ()) else None in
            let t0 = Sys.time () in
            let results = fanout.map worker m1.Lmodule.funcs in
            let wall = Sys.time () -. t0 in
            let funcs = List.map fst results in
            let m2 = { m1 with Lmodule.funcs = funcs } in
            (* per-pass worker clock aggregated across functions *)
            let agg =
              List.map
                (fun p ->
                  {
                    pass_name = p.name;
                    seconds =
                      List.fold_left
                        (fun a (_, ts) ->
                          List.fold_left
                            (fun a t ->
                              if t.pass_name = p.name then a +. t.seconds
                              else a)
                            a ts)
                        0.0 results;
                  })
                tail
            in
            (* coordinator-domain allocation only; worker-domain words
               are invisible to this domain's [Gc.quick_stat] *)
            if traced then begin
              let g1 = Gc.quick_stat () in
              let g0 = Option.get g0 in
              trace
                (Support.Tracing.with_alloc
                   ~minor_words:(g1.Gc.minor_words -. g0.Gc.minor_words)
                   ~major_words:(g1.Gc.major_words -. g0.Gc.major_words)
                   (Support.Tracing.event ~stage:"llvm-opt"
                      ~pass:"parallel-tail" ~seconds:wall
                      ~before:(Lmodule.instr_count m1)
                      ~after:(Lmodule.instr_count m2)))
            end;
            (m2, ts1 @ agg, Ran_parallel (List.length funcs)))

let by_name = function
  | "inline" -> Some inline
  | "mem2reg" -> Some mem2reg
  | "dce" -> Some dce
  | "constfold" -> Some constfold
  | "cse" -> Some cse
  | "simplifycfg" -> Some simplifycfg
  | "licm" -> Some licm
  | _ -> None
