(** Pass manager for LLVM-level transforms: named passes, pipelines,
    optional verification between passes, and per-pass timing. *)

type pass = { name : string; run : Lmodule.t -> Lmodule.t }

let inline = { name = "inline"; run = Opt_inline.run }
let mem2reg = { name = "mem2reg"; run = Opt_mem2reg.run }
let dce = { name = "dce"; run = Opt_dce.run }
let constfold = { name = "constfold"; run = Opt_constfold.run }
let cse = { name = "cse"; run = Opt_cse.run }
let simplifycfg = { name = "simplifycfg"; run = Opt_simplifycfg.run }
let licm = { name = "licm"; run = Opt_licm.run }

(** The -O2-flavoured cleanup pipeline both flows run before HLS.
    Inlining comes first: Vitis flattens the design into the top
    function before anything else. *)
let default_pipeline =
  [ inline; mem2reg; constfold; cse; licm; dce; simplifycfg; constfold; dce ]

type timing = { pass_name : string; seconds : float }

(** Run a pipeline.  With [~verify:true] (default) the module is
    verified after every pass so a miscompiling pass is caught at its
    source.  [?trace] receives one {!Support.Tracing.event} per pass
    (stage ["llvm-opt"]).  Returns the transformed module and per-pass
    timings. *)
let run_pipeline ?(verify = true) ?(trace = Support.Tracing.null)
    (passes : pass list) (m : Lmodule.t) : Lmodule.t * timing list =
  let timings = ref [] in
  let m =
    List.fold_left
      (fun m p ->
        let before = Lmodule.instr_count m in
        let t0 = Sys.time () in
        let m' = p.run m in
        let t1 = Sys.time () in
        timings := { pass_name = p.name; seconds = t1 -. t0 } :: !timings;
        if verify then Lverifier.verify_module m';
        trace
          (Support.Tracing.event ~stage:"llvm-opt" ~pass:p.name
             ~seconds:(t1 -. t0) ~before ~after:(Lmodule.instr_count m'));
        m')
      m passes
  in
  (m, List.rev !timings)

let by_name = function
  | "inline" -> Some inline
  | "mem2reg" -> Some mem2reg
  | "dce" -> Some dce
  | "constfold" -> Some constfold
  | "cse" -> Some cse
  | "simplifycfg" -> Some simplifycfg
  | "licm" -> Some licm
  | _ -> None
