(** Pass manager for LLVM-level transforms: named passes, pipelines,
    optional verification between passes, per-pass timing, and an
    {!Analysis} manager shared across the pipeline.

    Every pass declares which analyses it {e preserves}; after the
    pass runs, {!Analysis.keep} rebases exactly those onto the new
    function values and drops the rest.  Passes (and the verifier)
    query the shared manager instead of rebuilding analyses, so a
    CFG-preserving stretch of the pipeline computes the CFG, dominator
    tree and loop nest once.  A pass that preserves nothing must
    declare [preserves = []] — over-declaring breaks the rebase
    contract documented on {!Cfg.rebase}. *)

type pass = {
  name : string;
  preserves : Analysis.kind list;
      (** analyses still valid (after rebase) on this pass's output *)
  run : Analysis.t -> Lmodule.t -> Lmodule.t;
}

(* Inlining and CFG simplification restructure blocks, so they
   preserve nothing.  The scalar passes rewrite instructions inside a
   fixed block skeleton: block labels, order and terminator targets
   survive, so CFG-shaped analyses remain valid.  None of them
   preserves the function index — any instruction rewrite moves the
   arena. *)
let cfg_shape = [ Analysis.Cfg; Analysis.Dominance; Analysis.Loop_info ]

let inline =
  { name = "inline"; preserves = []; run = (fun _ m -> Opt_inline.run m) }

let mem2reg =
  { name = "mem2reg"; preserves = cfg_shape;
    run = (fun am m -> Opt_mem2reg.run ~am m) }

let dce =
  { name = "dce"; preserves = cfg_shape;
    run = (fun am m -> Opt_dce.run ~am m) }

let constfold =
  { name = "constfold"; preserves = cfg_shape;
    run = (fun _ m -> Opt_constfold.run m) }

let cse =
  { name = "cse"; preserves = cfg_shape;
    run = (fun am m -> Opt_cse.run ~am m) }

let simplifycfg =
  { name = "simplifycfg"; preserves = [];
    run = (fun am m -> Opt_simplifycfg.run ~am m) }

let licm =
  { name = "licm"; preserves = cfg_shape;
    run = (fun am m -> Opt_licm.run ~am m) }

(** The -O2-flavoured cleanup pipeline both flows run before HLS.
    Inlining comes first: Vitis flattens the design into the top
    function before anything else. *)
let default_pipeline =
  [ inline; mem2reg; constfold; cse; licm; dce; simplifycfg; constfold; dce ]

type timing = { pass_name : string; seconds : float }

(** Run a pipeline.  With [~verify:true] (default) the module is
    verified after every pass so a miscompiling pass is caught at its
    source.  [?trace] receives one {!Support.Tracing.event} per pass
    (stage ["llvm-opt"]) plus one per analysis query (stage
    ["analysis"], pass ["<kind>:hit"] / ["<kind>:compute"]).  Returns
    the transformed module and per-pass timings. *)
let run_pipeline ?(verify = true) ?(trace = Support.Tracing.null)
    (passes : pass list) (m : Lmodule.t) : Lmodule.t * timing list =
  let am = Analysis.create ~trace () in
  let timings = ref [] in
  let m =
    List.fold_left
      (fun m p ->
        let before = Lmodule.instr_count m in
        let t0 = Sys.time () in
        let m' = p.run am m in
        let t1 = Sys.time () in
        timings := { pass_name = p.name; seconds = t1 -. t0 } :: !timings;
        Analysis.keep am ~preserves:p.preserves m';
        if verify then Lverifier.verify_module ~am m';
        trace
          (Support.Tracing.event ~stage:"llvm-opt" ~pass:p.name
             ~seconds:(t1 -. t0) ~before ~after:(Lmodule.instr_count m'));
        m')
      m passes
  in
  (m, List.rev !timings)

let by_name = function
  | "inline" -> Some inline
  | "mem2reg" -> Some mem2reg
  | "dce" -> Some dce
  | "constfold" -> Some constfold
  | "cse" -> Some cse
  | "simplifycfg" -> Some simplifycfg
  | "licm" -> Some licm
  | _ -> None
