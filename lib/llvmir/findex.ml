(** Per-function index over the packed {!Iarena} encoding: def table,
    use-def/def-use edges, block membership and use counts — computed
    once and shared by every analysis and pass that used to rebuild
    its own string tables ad hoc.

    SSA names map to dense {e local ids}; defs, use counts and user
    edges are flat arrays over those ids, so the hot passes (DCE's
    cascade, CSE's availability walk, substitution marking) run as int
    reads with no hashing past the one probe that assigns the id.

    The index is a pure snapshot of one [Lmodule.func] value; any pass
    that rewrites the function must use a fresh index (or one the
    {!Pass} analysis manager revalidated) afterwards. *)

module Sym = Support.Interner

type def_site =
  | Param of int  (** defined by the [i]-th function parameter *)
  | Instr of int  (** defined by the instruction at this arena index *)

type t = {
  func : Lmodule.func;
  arena : Iarena.t;
  locals : int Sym.Tbl.t;  (** SSA name -> dense local id *)
  mutable n_locals : int;
  (* per-local tables, grown in lockstep with [locals] *)
  mutable def_kind : Bytes.t;  (** '\000' none, '\001' param, '\002' instr *)
  mutable def_ix : int array;
  mutable cnt : int array;  (** operand occurrences *)
  mutable user_head : int array;  (** head of the user edge list, -1 *)
  (* user edges as linked lists in push order (layout order): edge [e]
     is instruction [edge_k.(e)], next edge [edge_next.(e)] *)
  mutable edge_k : int array;
  mutable edge_next : int array;
  mutable n_edges : int;
  res_local : int array;  (** arena index -> local id of result, -1 *)
  pool_local : int array;  (** operand slot -> local id, -1 for non-regs *)
  block_index : int Sym.Tbl.t;  (** label -> block number *)
}

let grow_int a n = Array.append a (Array.make (max n (Array.length a)) 0)

let local t n =
  match Sym.Tbl.find_opt t.locals n with
  | Some l -> l
  | None ->
      let l = t.n_locals in
      t.n_locals <- l + 1;
      if l = Bytes.length t.def_kind then begin
        let b = Bytes.make (2 * l) '\000' in
        Bytes.blit t.def_kind 0 b 0 l;
        t.def_kind <- b;
        t.def_ix <- grow_int t.def_ix l;
        t.cnt <- grow_int t.cnt l;
        let h = Array.make (2 * l) (-1) in
        Array.blit t.user_head 0 h 0 l;
        t.user_head <- h
      end;
      t.def_ix.(l) <- 0;
      t.cnt.(l) <- 0;
      t.user_head.(l) <- -1;
      Sym.Tbl.replace t.locals n l;
      l

let push_edge t l k =
  let e = t.n_edges in
  if e = Array.length t.edge_k then begin
    t.edge_k <- grow_int t.edge_k e;
    t.edge_next <- grow_int t.edge_next e
  end;
  t.edge_k.(e) <- k;
  t.edge_next.(e) <- t.user_head.(l);
  t.user_head.(l) <- e;
  t.n_edges <- e + 1

(** Index a prebuilt arena.  [f] must be the function the arena
    materialises — {!build} pairs the two; passes seeding the analysis
    cache pair {!Iarena.compact} with their output function. *)
let of_arena (f : Lmodule.func) (a : Iarena.t) : t =
  let n = Iarena.n_instrs a in
  let cap l = max 16 l in
  let t =
    {
      func = f;
      arena = a;
      locals = Sym.Tbl.create (cap (2 * n));
      n_locals = 0;
      def_kind = Bytes.make (cap (n + List.length f.params)) '\000';
      def_ix = Array.make (cap (n + List.length f.params)) 0;
      cnt = Array.make (cap (n + List.length f.params)) 0;
      user_head = Array.make (cap (n + List.length f.params)) (-1);
      edge_k = Array.make (cap (2 * n)) 0;
      edge_next = Array.make (cap (2 * n)) 0;
      n_edges = 0;
      res_local = Array.make (max 1 n) (-1);
      pool_local = Array.make (max 1 (Iarena.pool_len a)) (-1);
      block_index = Sym.Tbl.create (cap (Iarena.n_blocks a));
    }
  in
  List.iteri
    (fun i (p : Lmodule.param) ->
      let l = local t (Sym.intern p.pname) in
      Bytes.set t.def_kind l '\001';
      t.def_ix.(l) <- i)
    f.params;
  for bi = 0 to Iarena.n_blocks a - 1 do
    Sym.Tbl.replace t.block_index (Iarena.block_label a bi) bi
  done;
  for k = 0 to n - 1 do
    let r = Iarena.result a k in
    if not (Sym.is_empty r) then begin
      let l = local t r in
      Bytes.set t.def_kind l '\002';
      t.def_ix.(l) <- k;
      t.res_local.(k) <- l
    end;
    let o = Iarena.op_off a k in
    for s = o to o + Iarena.op_len a k - 1 do
      match Iarena.opnd a s with
      | Lvalue.Reg (nm, _) ->
          let l = local t nm in
          t.pool_local.(s) <- l;
          t.cnt.(l) <- t.cnt.(l) + 1;
          (* an instruction using a name twice still lists once —
             callers only need the user set *)
          let h = t.user_head.(l) in
          if h = -1 || t.edge_k.(h) <> k then push_edge t l k
      | _ -> ()
    done
  done;
  t

let build (f : Lmodule.func) : t = of_arena f (Iarena.of_func f)

(** Rebase a cached index onto a rewritten function value.  Only valid
    when the rewrite changed no instruction — the analysis-manager
    preserve contract for the findex analysis. *)
let rebase t (f : Lmodule.func) = { t with func = f }

let func t = t.func
let arena t = t.arena
let n_instrs t = Iarena.n_instrs t.arena
let n_blocks t = Iarena.n_blocks t.arena
let instr t k = Iarena.instr t.arena k
let block_of_instr t k = Iarena.block_of t.arena k
let block_label t bi = Iarena.block_label t.arena bi
let block_number t label = Sym.Tbl.find_opt t.block_index label
let n_locals t = t.n_locals
let local_of t n = match Sym.Tbl.find_opt t.locals n with Some l -> l | None -> -1
let local_of_slot t s = t.pool_local.(s)
let local_of_res t k = t.res_local.(k)
let use_counts t = Array.sub t.cnt 0 t.n_locals

let def_of_local t l =
  if l < 0 then None
  else
    match Bytes.get t.def_kind l with
    | '\001' -> Some (Param t.def_ix.(l))
    | '\002' -> Some (Instr t.def_ix.(l))
    | _ -> None

(** Unique def site of an SSA name; [None] for names the function does
    not define (undefined references). *)
let def t n = def_of_local t (local_of t n)

(** Defining instruction; [None] for parameters and unknown names. *)
let def_instr t n =
  match def t n with Some (Instr k) -> Some (instr t k) | _ -> None

(** Is [n] defined here at all (parameter or instruction result)? *)
let defines t n = def t n <> None

let iter_users t n f =
  let l = local_of t n in
  if l >= 0 then begin
    let e = ref t.user_head.(l) in
    while !e >= 0 do
      f t.edge_k.(!e);
      e := t.edge_next.(!e)
    done
  end

(** Arena indices of the instructions using [n], in layout order. *)
let users t n =
  let acc = ref [] in
  iter_users t n (fun k -> acc := k :: !acc);
  !acc

let use_count t n =
  let l = local_of t n in
  if l >= 0 then t.cnt.(l) else 0

let is_used t n = use_count t n > 0

(** Root of a pointer value: walk GEP/bitcast chains back to the
    underlying parameter, alloca or global name. *)
let rec base_pointer (t : t) (v : Lvalue.t) : Sym.t option =
  match v with
  | Lvalue.Reg (n, _) -> (
      match def_instr t n with
      | Some { Linstr.op = Linstr.Gep { base; _ }; _ } -> base_pointer t base
      | Some { Linstr.op = Linstr.Cast (Linstr.Bitcast, src, _); _ } ->
          base_pointer t src
      | Some _ | None -> Some n)
  | Lvalue.Global (n, _) -> Some n
  | _ -> None

(* Path-compress substitution chains: every key maps straight to its
   final value, so the rewrite walk below resolves each operand with
   one lookup. *)
let compress_chains (subst : Lvalue.t Sym.Tbl.t) : Lvalue.t Sym.Tbl.t =
  let resolved : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 16 in
  let rec resolve_sym n seen =
    match Sym.Tbl.find_opt resolved n with
    | Some v -> Some v
    | None ->
        let v =
          match Sym.Tbl.find_opt subst n with
          | None -> None
          | Some (Lvalue.Reg (n', _) as v')
            when (not (Sym.equal n' n)) && not (List.memq n' seen) -> (
              match resolve_sym n' (n :: seen) with
              | Some v'' -> Some v''
              | None -> Some v')
          | Some v' -> Some v'
        in
        (match v with Some v' -> Sym.Tbl.replace resolved n v' | None -> ());
        v
  in
  Sym.Tbl.iter (fun n _ -> ignore (resolve_sym n [])) subst;
  resolved

(** Substitute registers by name, resolving substitution chains, via a
    single indexed walk: chains are path-compressed once, then only
    the instructions the index lists as users of a substituted name
    are rebuilt. *)
let substitute (idx : t) (subst : Lvalue.t Sym.Tbl.t) : Lmodule.func =
  if Sym.Tbl.length subst = 0 then idx.func
  else begin
    let a = idx.arena in
    let resolved = compress_chains subst in
    let affected = Bytes.make (max 1 (Iarena.n_instrs a)) '\000' in
    Sym.Tbl.iter
      (fun n _ -> iter_users idx n (fun k -> Bytes.set affected k '\001'))
      subst;
    let resolve v =
      match v with
      | Lvalue.Reg (n, _) -> (
          match Sym.Tbl.find_opt resolved n with Some v' -> v' | None -> v)
      | _ -> v
    in
    let blocks =
      List.init (Iarena.n_blocks a) (fun bi ->
          let insts = ref [] in
          for k = Iarena.block_stop a bi - 1 downto Iarena.block_start a bi do
            let i = Iarena.instr a k in
            insts :=
              (if Bytes.get affected k = '\001' then
                 Linstr.map_operands resolve i
               else i)
              :: !insts
          done;
          { Lmodule.label = Iarena.block_label a bi; insts = !insts })
    in
    { idx.func with Lmodule.blocks }
  end

(** Convenience: substitute over a function without a prebuilt index —
    still one walk (compressed chains, one lookup per operand), but
    skips building use-def tables nothing else will read. *)
let substitute_func (subst : Lvalue.t Sym.Tbl.t) (f : Lmodule.func) :
    Lmodule.func =
  if Sym.Tbl.length subst = 0 then f
  else begin
    let resolved = compress_chains subst in
    let resolve v =
      match v with
      | Lvalue.Reg (n, _) -> (
          match Sym.Tbl.find_opt resolved n with Some v' -> v' | None -> v)
      | _ -> v
    in
    Lmodule.map_values resolve f
  end
