(** Per-function index: instruction arena, def table, use-def/def-use
    edges, block membership and use counts — computed once and shared
    by every analysis and pass that used to rebuild its own string
    tables ad hoc.

    The index is a pure snapshot of one [Lmodule.func] value; any pass
    that rewrites the function must use a fresh index (or one the
    {!Pass} analysis manager revalidated) afterwards. *)

module Sym = Support.Interner

type def_site =
  | Param of int  (** defined by the [i]-th function parameter *)
  | Instr of int  (** defined by the instruction at this arena index *)

(* One mutable cell per SSA name keeps {!build} at a single hashtable
   probe per operand occurrence; the old three-table layout paid a
   find + replace on two tables for every register operand. *)
type cell = {
  mutable c_def : def_site option;
  mutable c_count : int;  (** operand occurrences *)
  mutable c_users_rev : int list;  (** arena indices, reverse layout order *)
}

type t = {
  func : Lmodule.func;
  arena : Linstr.t array;  (** all instructions, layout order *)
  block_of : int array;  (** arena index -> block number *)
  block_labels : Sym.t array;  (** block number -> label *)
  block_index : int Sym.Tbl.t;  (** label -> block number *)
  cells : cell Sym.Tbl.t;  (** SSA name -> def site, users, use count *)
}

let build (f : Lmodule.func) : t =
  let n_instrs =
    List.fold_left (fun n (b : Lmodule.block) -> n + List.length b.insts) 0
      f.blocks
  in
  let n_blocks = List.length f.blocks in
  let arena = Array.make n_instrs (Linstr.make Linstr.Unreachable) in
  let block_of = Array.make n_instrs 0 in
  let block_labels = Array.make n_blocks Sym.empty in
  let block_index = Sym.Tbl.create (max 16 n_blocks) in
  let cells = Sym.Tbl.create (max 16 n_instrs) in
  let cell n =
    match Sym.Tbl.find_opt cells n with
    | Some c -> c
    | None ->
        let c = { c_def = None; c_count = 0; c_users_rev = [] } in
        Sym.Tbl.replace cells n c;
        c
  in
  List.iteri
    (fun i (p : Lmodule.param) ->
      (cell (Sym.intern p.pname)).c_def <- Some (Param i))
    f.params;
  let pos = ref 0 in
  List.iteri
    (fun bi (b : Lmodule.block) ->
      block_labels.(bi) <- b.label;
      Sym.Tbl.replace block_index b.label bi;
      List.iter
        (fun (i : Linstr.t) ->
          let k = !pos in
          incr pos;
          arena.(k) <- i;
          block_of.(k) <- bi;
          if not (Sym.is_empty i.Linstr.result) then
            (cell i.Linstr.result).c_def <- Some (Instr k);
          Linstr.iter_operands
            (function
              | Lvalue.Reg (n, _) ->
                  let c = cell n in
                  c.c_count <- c.c_count + 1;
                  (* an instruction using a name twice still lists
                     once — callers only need the user set *)
                  (match c.c_users_rev with
                  | k' :: _ when k' = k -> ()
                  | l -> c.c_users_rev <- k :: l)
              | _ -> ())
            i)
        b.insts)
    f.blocks;
  { func = f; arena; block_of; block_labels; block_index; cells }

(** Rebase a cached index onto a rewritten function value.  Only valid
    when the rewrite changed no instruction — the analysis-manager
    preserve contract for the findex analysis. *)
let rebase t (f : Lmodule.func) = { t with func = f }

let func t = t.func
let n_instrs t = Array.length t.arena
let n_blocks t = Array.length t.block_labels
let instr t k = t.arena.(k)
let block_of_instr t k = t.block_of.(k)
let block_label t bi = t.block_labels.(bi)
let block_number t label = Sym.Tbl.find_opt t.block_index label

(** Unique def site of an SSA name; [None] for names the function does
    not define (undefined references). *)
let def t n =
  match Sym.Tbl.find_opt t.cells n with Some c -> c.c_def | None -> None

(** Defining instruction; [None] for parameters and unknown names. *)
let def_instr t n =
  match def t n with Some (Instr k) -> Some t.arena.(k) | _ -> None

(** Is [n] defined here at all (parameter or instruction result)? *)
let defines t n =
  match Sym.Tbl.find_opt t.cells n with
  | Some c -> c.c_def <> None
  | None -> false

(** Arena indices of the instructions using [n], in layout order. *)
let users t n =
  match Sym.Tbl.find_opt t.cells n with
  | Some c -> List.rev c.c_users_rev
  | None -> []

let use_count t n =
  match Sym.Tbl.find_opt t.cells n with Some c -> c.c_count | None -> 0

let is_used t n = use_count t n > 0

(** Root of a pointer value: walk GEP/bitcast chains back to the
    underlying parameter, alloca or global name. *)
let rec base_pointer (t : t) (v : Lvalue.t) : Sym.t option =
  match v with
  | Lvalue.Reg (n, _) -> (
      match def_instr t n with
      | Some { Linstr.op = Linstr.Gep { base; _ }; _ } -> base_pointer t base
      | Some { Linstr.op = Linstr.Cast (Linstr.Bitcast, src, _); _ } ->
          base_pointer t src
      | Some _ | None -> Some n)
  | Lvalue.Global (n, _) -> Some n
  | _ -> None

(* Path-compress substitution chains: every key maps straight to its
   final value, so the rewrite walk below resolves each operand with
   one lookup. *)
let compress_chains (subst : Lvalue.t Sym.Tbl.t) : Lvalue.t Sym.Tbl.t =
  let resolved : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 16 in
  let rec resolve_sym n seen =
    match Sym.Tbl.find_opt resolved n with
    | Some v -> Some v
    | None ->
        let v =
          match Sym.Tbl.find_opt subst n with
          | None -> None
          | Some (Lvalue.Reg (n', _) as v')
            when (not (Sym.equal n' n)) && not (List.memq n' seen) -> (
              match resolve_sym n' (n :: seen) with
              | Some v'' -> Some v''
              | None -> Some v')
          | Some v' -> Some v'
        in
        (match v with Some v' -> Sym.Tbl.replace resolved n v' | None -> ());
        v
  in
  Sym.Tbl.iter (fun n _ -> ignore (resolve_sym n [])) subst;
  resolved

(** Substitute registers by name, resolving substitution chains, via a
    single indexed walk: chains are path-compressed once, then only
    the instructions the index lists as users of a substituted name
    are rebuilt. *)
let substitute (idx : t) (subst : Lvalue.t Sym.Tbl.t) : Lmodule.func =
  if Sym.Tbl.length subst = 0 then idx.func
  else begin
    let resolved = compress_chains subst in
    let affected = Array.make (Array.length idx.arena) false in
    Sym.Tbl.iter
      (fun n _ ->
        match Sym.Tbl.find_opt idx.cells n with
        | Some c -> List.iter (fun k -> affected.(k) <- true) c.c_users_rev
        | None -> ())
      subst;
    let resolve v =
      match v with
      | Lvalue.Reg (n, _) -> (
          match Sym.Tbl.find_opt resolved n with Some v' -> v' | None -> v)
      | _ -> v
    in
    let pos = ref 0 in
    let blocks =
      List.map
        (fun (b : Lmodule.block) ->
          let insts =
            List.map
              (fun i ->
                let k = !pos in
                incr pos;
                if affected.(k) then Linstr.map_operands resolve i else i)
              b.insts
          in
          { b with Lmodule.insts })
        idx.func.blocks
    in
    { idx.func with Lmodule.blocks }
  end

(** Convenience: substitute over a function without a prebuilt index —
    still one walk (compressed chains, one lookup per operand), but
    skips building use-def tables nothing else will read. *)
let substitute_func (subst : Lvalue.t Sym.Tbl.t) (f : Lmodule.func) :
    Lmodule.func =
  if Sym.Tbl.length subst = 0 then f
  else begin
    let resolved = compress_chains subst in
    let resolve v =
      match v with
      | Lvalue.Reg (n, _) -> (
          match Sym.Tbl.find_opt resolved n with Some v' -> v' | None -> v)
      | _ -> v
    in
    Lmodule.map_values resolve f
  end
