(** LLVM IR verifier: module/function well-formedness and SSA dominance.

    Checks:
    - block structure: non-empty blocks, exactly one terminator, at the
      end; entry block has no phis; unique labels;
    - SSA: unique definitions; every register use is dominated by its
      definition (phi uses checked against the incoming edge);
    - types: operand types are consistent where locally checkable
      (binop operands match, store value matches pointee for typed
      pointers, GEP base is a pointer, ...);
    - calls: callee is a defined function or declaration with matching
      arity. *)

open Linstr
open Lmodule
module Sym = Support.Interner

let fail = Support.Err.fail ~pass:"llvmir.verifier"

let check_block_structure (f : func) =
  let seen = Sym.Tbl.create 16 in
  List.iter
    (fun (b : block) ->
      if Sym.Tbl.mem seen b.label then
        fail "@%s: duplicate block label %%%s" f.fname (Sym.name b.label);
      Sym.Tbl.replace seen b.label ();
      match List.rev b.insts with
      | [] -> fail "@%s: empty block %%%s" f.fname (Sym.name b.label)
      | term :: rest ->
          if not (is_terminator term) then
            fail "@%s: block %%%s does not end with a terminator" f.fname
              (Sym.name b.label);
          List.iter
            (fun i ->
              if is_terminator i then
                fail "@%s: terminator in the middle of block %%%s" f.fname
                  (Sym.name b.label))
            rest)
    f.blocks;
  (match f.blocks with
  | entry :: _ ->
      List.iter
        (fun (i : Linstr.t) ->
          match i.op with
          | Phi _ -> fail "@%s: phi in entry block" f.fname
          | _ -> ())
        entry.insts
  | [] -> fail "@%s: function has no blocks" f.fname)

let check_ssa ?am (f : func) =
  let idx = Analysis.findex ?am f in
  let cfg = Analysis.cfg ?am f in
  (* without a manager, derive dominance from the CFG already in hand
     rather than letting [Analysis.dominance] rebuild it *)
  let dom =
    match am with
    | Some _ -> Analysis.dominance ?am f
    | None -> Dominance.compute cfg
  in
  (* unique definitions: the index keeps the last def per name, so any
     def site that is not its own recorded def is a duplicate *)
  List.iteri
    (fun pi (p : param) ->
      match Findex.def idx (Sym.intern p.pname) with
      | Some (Findex.Param pj) when pj = pi -> ()
      | _ ->
          fail "@%s: register %%%s defined more than once" f.fname p.pname)
    f.params;
  for k = 0 to Findex.n_instrs idx - 1 do
    let i = Findex.instr idx k in
    if not (Sym.is_empty i.result) then
      match Findex.def idx i.result with
      | Some (Findex.Instr k') when k' = k -> ()
      | _ ->
          fail "@%s: register %%%s defined more than once" f.fname
            (Sym.name i.result)
  done;
  (* every use dominated by its def; the arena is in layout order, so
     intra-block ordering is plain index comparison *)
  let check_use ~use_k name =
    match Findex.def idx name with
    | None ->
        fail "@%s: use of undefined register %%%s" f.fname (Sym.name name)
    | Some (Findex.Param _) -> ()
    | Some (Findex.Instr def_k) ->
        let def_bi = Findex.block_of_instr idx def_k in
        let use_bi = Findex.block_of_instr idx use_k in
        let ok =
          if def_bi = use_bi then def_k < use_k
          else Dominance.dominates dom def_bi use_bi
        in
        if not ok then
          fail "@%s: use of %%%s (block %%%s) not dominated by its definition"
            f.fname (Sym.name name)
            (Sym.name (Cfg.label cfg use_bi))
  in
  for k = 0 to Findex.n_instrs idx - 1 do
    let i = Findex.instr idx k in
    let bi = Findex.block_of_instr idx k in
    match i.op with
    | Phi incoming ->
        (* each incoming value must dominate the end of its pred *)
        List.iter
          (fun (v, pred_label) ->
            match Cfg.index_of cfg pred_label with
            | None ->
                fail "@%s: phi references unknown block %%%s" f.fname
                  (Sym.name pred_label)
            | Some pred_bi -> (
                if not (List.mem pred_bi cfg.Cfg.preds.(bi)) then
                  fail "@%s: phi incoming block %%%s is not a predecessor"
                    f.fname (Sym.name pred_label);
                match v with
                | Lvalue.Reg (n, _) -> (
                    match Findex.def idx n with
                    | None ->
                        fail "@%s: phi uses undefined register %%%s" f.fname
                          (Sym.name n)
                    | Some (Findex.Param _) -> ()
                    | Some (Findex.Instr def_k) ->
                        if
                          not
                            (Dominance.dominates dom
                               (Findex.block_of_instr idx def_k)
                               pred_bi)
                        then
                          fail
                            "@%s: phi incoming %%%s does not dominate edge \
                             from %%%s"
                            f.fname (Sym.name n) (Sym.name pred_label))
                | _ -> ()))
          incoming
    | _ ->
        List.iter
          (function
            | Lvalue.Reg (n, _) -> check_use ~use_k:k n
            | _ -> ())
          (operands i)
  done

let check_types (f : func) =
  iter_insts
    (fun (i : Linstr.t) ->
      let t = Lvalue.type_of in
      match i.op with
      | IBin (_, a, b) ->
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: %%%s: integer binop operand types differ" f.fname
              (result_name i);
          if not (Ltype.is_int (t a)) then
            fail "@%s: %%%s: integer binop on non-integer" f.fname
              (result_name i)
      | FBin (_, a, b) ->
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: %%%s: float binop operand types differ" f.fname
              (result_name i);
          if not (Ltype.is_float (t a)) then
            fail "@%s: %%%s: float binop on non-float" f.fname (result_name i)
      | Icmp (_, a, b) ->
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: icmp operand types differ" f.fname
      | Fcmp (_, a, b) ->
          if not (Ltype.equal (t a) (t b) && Ltype.is_float (t a)) then
            fail "@%s: fcmp operand types invalid" f.fname
      | Load (ty, p) -> (
          match t p with
          | Ltype.Ptr (Some pt) when not (Ltype.equal pt ty) ->
              fail "@%s: load type %s from pointer to %s" f.fname
                (Ltype.to_string ty) (Ltype.to_string pt)
          | Ltype.Ptr _ -> ()
          | other ->
              fail "@%s: load from non-pointer %s" f.fname
                (Ltype.to_string other))
      | Store (v, p) -> (
          match t p with
          | Ltype.Ptr (Some pt) when not (Ltype.equal pt (t v)) ->
              fail "@%s: store of %s into pointer to %s" f.fname
                (Ltype.to_string (t v)) (Ltype.to_string pt)
          | Ltype.Ptr _ -> ()
          | other ->
              fail "@%s: store to non-pointer %s" f.fname
                (Ltype.to_string other))
      | Gep { base; idxs; _ } ->
          if not (Ltype.is_pointer (t base)) then
            fail "@%s: getelementptr base is not a pointer" f.fname;
          List.iter
            (fun v ->
              if not (Ltype.is_int (t v)) then
                fail "@%s: getelementptr index is not an integer" f.fname)
            idxs
      | Select (c, a, b) ->
          if not (Ltype.equal (t c) Ltype.I1) then
            fail "@%s: select condition is not i1" f.fname;
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: select branch types differ" f.fname
      | Phi incoming ->
          let tys = List.map (fun (v, _) -> t v) incoming in
          (match tys with
          | [] -> fail "@%s: empty phi" f.fname
          | ty0 :: rest ->
              if not (List.for_all (Ltype.equal ty0) rest) then
                fail "@%s: phi incoming types differ" f.fname)
      | CondBr (c, _, _) ->
          if not (Ltype.equal (t c) Ltype.I1) then
            fail "@%s: conditional branch on non-i1" f.fname
      | Ret (Some v) ->
          if not (Ltype.equal (t v) f.ret_ty) then
            fail "@%s: return type mismatch" f.fname
      | Ret None ->
          if not (Ltype.equal f.ret_ty Ltype.Void) then
            fail "@%s: void return from non-void function" f.fname
      | _ -> ())
    f

let check_calls (m : t) (f : func) =
  iter_insts
    (fun (i : Linstr.t) ->
      match i.op with
      | Call { callee; args; ret } -> (
          match find_func m callee with
          | Some g ->
              if List.length args <> List.length g.params then
                fail "@%s: call @%s with wrong arity" f.fname callee;
              if not (Ltype.equal ret g.ret_ty) then
                fail "@%s: call @%s return type mismatch" f.fname callee
          | None -> (
              match find_decl m callee with
              | Some d ->
                  if List.length args <> List.length d.dargs then
                    fail "@%s: call @%s with wrong arity" f.fname callee
              | None ->
                  fail "@%s: call to undeclared function @%s" f.fname callee))
      | _ -> ())
    f

(* With a manager, verification is incremental: a function value the
   verifier already accepted under this manager is skipped (every
   check is a pure property of the value plus the module's callable
   signatures, and {!Analysis.verified} is cleared the moment any
   query or {!Analysis.keep} sees a new value under that name).
   Callers that reuse one manager across several passes of the same
   module — the pass pipeline, the adaptor — therefore only pay for
   functions a pass actually rewrote. *)
let verify_func ?am (m : t) (f : func) =
  let skip = match am with Some a -> Analysis.verified a f | None -> false in
  if not skip then begin
    check_block_structure f;
    check_ssa ?am f;
    check_types f;
    check_calls m f;
    match am with Some a -> Analysis.mark_verified a f | None -> ()
  end

let verify_module ?am (m : t) =
  (* Call-site checks read other functions' signatures, so a skip is
     only sound while the signature environment is stable; when it
     moved (e.g. the adaptor rewrote parameter lists), call sites of
     untouched functions are re-checked — exactly the staleness a
     skipped full check could miss. *)
  let sigs_changed =
    match am with Some a -> Analysis.note_signatures a m | None -> true
  in
  List.iter
    (fun f ->
      match am with
      | Some a when Analysis.verified a f ->
          if sigs_changed then check_calls m f
      | _ -> verify_func ?am m f)
    m.funcs
