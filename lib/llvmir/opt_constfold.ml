(** Constant folding and instruction simplification.

    A single forward walk per iteration: constants and copies propagate
    through a substitution map, folded instructions disappear.
    Handles: integer/float binops on literals, comparisons, selects on
    literal conditions, casts of literals, algebraic identities
    ([x+0], [x*1], [x*0], [x-x], ...). *)

open Linstr
open Lvalue
module Sym = Support.Interner

(* Folding must agree with {!Linterp.ibin_eval} bit-for-bit or the
   differential oracle would distinguish optimized from unoptimized IR;
   both defer to {!Support.Int_sem}.  Inputs normalize first so literal
   constants written outside the type's range fold the same way the
   interpreter evaluates them. *)
let fold_ibin op ty a b =
  let w = Ltype.int_width ty in
  let module S = Support.Int_sem in
  let a = Linterp.norm_int ty a and b = Linterp.norm_int ty b in
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | SDiv -> if b = 0 then None else Some (a / b)
  | SRem -> if b = 0 then None else Some (a mod b)
  | UDiv -> if b = 0 then None else Some (S.udiv ~width:w a b)
  | URem -> if b = 0 then None else Some (S.urem ~width:w a b)
  | Shl -> Some (S.shl ~width:w a b)
  | AShr -> Some (S.ashr ~width:w a b)
  | LShr -> Some (S.lshr ~width:w a b)
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)

let fold_fbin op a b =
  match op with
  | FAdd -> Some (a +. b)
  | FSub -> Some (a -. b)
  | FMul -> Some (a *. b)
  | FDiv -> Some (a /. b)
  | FRem -> Some (Float.rem a b)

let fold_icmp p ty a b =
  let a = Linterp.norm_int ty a and b = Linterp.norm_int ty b in
  if Linterp.icmp_eval p a b then 1 else 0

let inst_count_diff f f' = Lmodule.inst_count f <> Lmodule.inst_count f'

let run_func (f : Lmodule.func) : Lmodule.func * bool =
  let changed = ref false in
  let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 32 in
  let resolve v =
    match v with
    | Reg (n, _) -> (
        match Sym.Tbl.find_opt subst n with Some v' -> v' | None -> v)
    | _ -> v
  in
  let replace result v =
    changed := true;
    Sym.Tbl.replace subst result v;
    []
  in
  let rw (i : Linstr.t) : Linstr.t list =
    let i = Linstr.map_operands resolve i in
    match i.op with
    | IBin (op, Const (CInt (a, ty)), Const (CInt (b, _))) -> (
        match fold_ibin op ty a b with
        | Some v ->
            replace i.result (Const (CInt (Linterp.norm_int ty v, ty)))
        | None -> [ i ])
    | FBin (op, Const (CFloat (a, ty)), Const (CFloat (b, _))) -> (
        match fold_fbin op a b with
        | Some v -> replace i.result (Const (CFloat (v, ty)))
        | None -> [ i ])
    | Icmp (p, Const (CInt (a, ty)), Const (CInt (b, _))) ->
        replace i.result (Const (CInt (fold_icmp p ty a b, Ltype.I1)))
    | Select (Const (CInt (c, _)), a, b) ->
        replace i.result (if c <> 0 then a else b)
    | Cast ((Sext | Zext | Trunc), Const (CInt (v, _)), ty) ->
        replace i.result (Const (CInt (Linterp.norm_int ty v, ty)))
    | Cast (Sitofp, Const (CInt (v, _)), ty) ->
        replace i.result (Const (CFloat (float_of_int v, ty)))
    | Cast ((Fpext | Fptrunc), Const (CFloat (v, _)), ty) ->
        replace i.result (Const (CFloat (v, ty)))
    (* algebraic identities *)
    | IBin (Add, x, Const (CInt (0, _)))
    | IBin (Add, Const (CInt (0, _)), x)
    | IBin (Sub, x, Const (CInt (0, _)))
    | IBin (Mul, x, Const (CInt (1, _)))
    | IBin (Mul, Const (CInt (1, _)), x)
    | IBin (SDiv, x, Const (CInt (1, _)))
    | IBin (Or, x, Const (CInt (0, _)))
    | IBin (Or, Const (CInt (0, _)), x)
    | IBin (Xor, x, Const (CInt (0, _)))
    | IBin (Shl, x, Const (CInt (0, _)))
    | IBin (AShr, x, Const (CInt (0, _))) ->
        replace i.result x
    | IBin (Mul, _, (Const (CInt (0, _)) as z))
    | IBin (Mul, (Const (CInt (0, _)) as z), _)
    | IBin (And, _, (Const (CInt (0, _)) as z))
    | IBin (And, (Const (CInt (0, _)) as z), _) ->
        replace i.result z
    | IBin (Sub, Reg (a, ty), Reg (b, _)) when a = b ->
        replace i.result (Const (CInt (0, ty)))
    | FBin (FAdd, x, Const (CFloat (0.0, _)))
    | FBin (FAdd, Const (CFloat (0.0, _)), x)
    | FBin (FSub, x, Const (CFloat (0.0, _)))
    | FBin (FMul, x, Const (CFloat (1.0, _)))
    | FBin (FMul, Const (CFloat (1.0, _)), x)
    | FBin (FDiv, x, Const (CFloat (1.0, _))) ->
        replace i.result x
    | Select (_, a, b) when Lvalue.equal a b -> replace i.result a
    | Phi incoming -> (
        (* all-same phi (ignoring self references) folds to the value *)
        let non_self =
          List.filter
            (fun (v, _) ->
              match v with Reg (n, _) -> not (Sym.equal n i.result) | _ -> true)
            incoming
        in
        match non_self with
        | (v0, _) :: rest when List.for_all (fun (v, _) -> Lvalue.equal v v0) rest
          ->
            replace i.result v0
        | _ -> [ i ])
    | Freeze v when Lvalue.is_const v -> replace i.result v
    | _ -> [ i ]
  in
  (* forward passes until stable (substitutions can cascade) *)
  let rec go f n =
    Sym.Tbl.reset subst;
    changed := false;
    let f' = Lmodule.rewrite_insts rw f in
    (* apply any lingering substitutions to operands everywhere *)
    let f' = Findex.substitute_func subst f' in
    if !changed && n > 0 then (fst (go f' (n - 1)), true) else (f', !changed)
  in
  let f', _ = go f 8 in
  (f', inst_count_diff f f')

let run (m : Lmodule.t) : Lmodule.t =
  Lmodule.map_funcs (fun f -> fst (run_func f)) m
