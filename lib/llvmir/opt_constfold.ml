(** Constant folding and instruction simplification.

    A single forward walk per iteration: constants and copies propagate
    through a substitution map, folded instructions disappear.
    Handles: integer/float binops on literals, comparisons, selects on
    literal conditions, casts of literals, algebraic identities
    ([x+0], [x*1], [x*0], [x-x], ...).

    Iterations run in place on the packed {!Iarena}: the walk reads
    operand-pool slots, folded rows are killed, substitutions rewrite
    the slots of surviving rows, and the next round walks the same
    flat storage — no per-round function rebuild.  Materialisation
    happens once at the end, only when something folded. *)

open Linstr
open Lvalue
module Sym = Support.Interner

(* Folding must agree with {!Linterp.ibin_eval} bit-for-bit or the
   differential oracle would distinguish optimized from unoptimized IR;
   both defer to {!Support.Int_sem}.  Inputs normalize first so literal
   constants written outside the type's range fold the same way the
   interpreter evaluates them. *)
let fold_ibin op ty a b =
  let w = Ltype.int_width ty in
  let module S = Support.Int_sem in
  let a = Linterp.norm_int ty a and b = Linterp.norm_int ty b in
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | SDiv -> if b = 0 then None else Some (a / b)
  | SRem -> if b = 0 then None else Some (a mod b)
  | UDiv -> if b = 0 then None else Some (S.udiv ~width:w a b)
  | URem -> if b = 0 then None else Some (S.urem ~width:w a b)
  | Shl -> Some (S.shl ~width:w a b)
  | AShr -> Some (S.ashr ~width:w a b)
  | LShr -> Some (S.lshr ~width:w a b)
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)

let fold_fbin op a b =
  match op with
  | FAdd -> Some (a +. b)
  | FSub -> Some (a -. b)
  | FMul -> Some (a *. b)
  | FDiv -> Some (a /. b)
  | FRem -> Some (Float.rem a b)

let fold_icmp p ty a b =
  let a = Linterp.norm_int ty a and b = Linterp.norm_int ty b in
  if Linterp.icmp_eval p a b then 1 else 0

let run_func ?am (f : Lmodule.func) : Lmodule.func * bool =
  (* Under a manager the post-verify index for [f] is already cached,
     so its arena is free; standalone, encode without index tables. *)
  let a =
    match am with
    | Some _ -> Findex.arena (Analysis.findex ?am f)
    | None -> Iarena.of_func f
  in
  let n = Iarena.n_instrs a in
  let changed = ref false in
  let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 32 in
  let replace k v =
    changed := true;
    Iarena.kill a k;
    Sym.Tbl.replace subst (Iarena.result a k) v
  in
  let visit k =
    let o = Iarena.op_off a k and l = Iarena.op_len a k in
    (* walk-time resolution, in place — one probe per register slot *)
    for s = o to o + l - 1 do
      match Iarena.opnd a s with
      | Reg (r, _) -> (
          match Sym.Tbl.find_opt subst r with
          | Some v' -> Iarena.set_opnd a k s v'
          | None -> ())
      | _ -> ()
    done;
    let tg = Iarena.tag a k in
    if tg = Iarena.tag_ibin then begin
      let va = Iarena.opnd a o and vb = Iarena.opnd a (o + 1) in
      match (va, vb) with
      | Const (CInt (x, ty)), Const (CInt (y, _)) -> (
          match fold_ibin (Iarena.ibinop a k) ty x y with
          | Some v -> replace k (Const (CInt (Linterp.norm_int ty v, ty)))
          | None -> ())
      | _ -> (
          (* algebraic identities *)
          match (Iarena.ibinop a k, va, vb) with
          | (Add | Sub | Or | Xor | Shl | AShr), x, Const (CInt (0, _))
          | (Add | Or), Const (CInt (0, _)), x
          | (Mul | SDiv), x, Const (CInt (1, _))
          | Mul, Const (CInt (1, _)), x ->
              replace k x
          | Mul, _, (Const (CInt (0, _)) as z)
          | Mul, (Const (CInt (0, _)) as z), _
          | And, _, (Const (CInt (0, _)) as z)
          | And, (Const (CInt (0, _)) as z), _ ->
              replace k z
          | Sub, Reg (x, ty), Reg (y, _) when Sym.equal x y ->
              replace k (Const (CInt (0, ty)))
          | _ -> ())
    end
    else if tg = Iarena.tag_fbin then begin
      let va = Iarena.opnd a o and vb = Iarena.opnd a (o + 1) in
      match (va, vb) with
      | Const (CFloat (x, ty)), Const (CFloat (y, _)) -> (
          match fold_fbin (Iarena.fbinop a k) x y with
          | Some v -> replace k (Const (CFloat (v, ty)))
          | None -> ())
      | _ -> (
          match (Iarena.fbinop a k, va, vb) with
          | (FAdd | FSub), x, Const (CFloat (0.0, _))
          | FAdd, Const (CFloat (0.0, _)), x
          | (FMul | FDiv), x, Const (CFloat (1.0, _))
          | FMul, Const (CFloat (1.0, _)), x ->
              replace k x
          | _ -> ())
    end
    else if tg = Iarena.tag_icmp then begin
      match (Iarena.opnd a o, Iarena.opnd a (o + 1)) with
      | Const (CInt (x, ty)), Const (CInt (y, _)) ->
          replace k
            (Const (CInt (fold_icmp (Iarena.icmp a k) ty x y, Ltype.I1)))
      | _ -> ()
    end
    else if tg = Iarena.tag_select then begin
      match Iarena.opnd a o with
      | Const (CInt (c, _)) ->
          replace k (Iarena.opnd a (if c <> 0 then o + 1 else o + 2))
      | _ ->
          let x = Iarena.opnd a (o + 1) and y = Iarena.opnd a (o + 2) in
          if Lvalue.equal x y then replace k x
    end
    else if tg = Iarena.tag_cast then begin
      match (Iarena.cast a k, Iarena.opnd a o) with
      | (Sext | Zext | Trunc), Const (CInt (v, _)) ->
          let ty = Iarena.ty_of_ix a (Iarena.aux0 a k) in
          replace k (Const (CInt (Linterp.norm_int ty v, ty)))
      | Sitofp, Const (CInt (v, _)) ->
          replace k
            (Const (CFloat (float_of_int v, Iarena.ty_of_ix a (Iarena.aux0 a k))))
      | (Fpext | Fptrunc), Const (CFloat (v, _)) ->
          replace k (Const (CFloat (v, Iarena.ty_of_ix a (Iarena.aux0 a k))))
      | _ -> ()
    end
    else if tg = Iarena.tag_phi then begin
      (* all-same phi (ignoring self references) folds to the value *)
      let r = Iarena.result a k in
      let v0 = ref None and all_same = ref true in
      for i = 0 to l - 1 do
        let v = Iarena.opnd a (o + i) in
        let self =
          match v with Reg (x, _) -> Sym.equal x r | _ -> false
        in
        if not self then
          match !v0 with
          | None -> v0 := Some v
          | Some w -> if not (Lvalue.equal v w) then all_same := false
      done;
      match !v0 with
      | Some v when !all_same -> replace k v
      | _ -> ()
    end
    else if tg = Iarena.tag_freeze then begin
      let v = Iarena.opnd a o in
      if Lvalue.is_const v then replace k v
    end
  in
  (* forward passes until stable (substitutions can cascade) *)
  let rec go rounds =
    Sym.Tbl.reset subst;
    changed := false;
    for k = 0 to n - 1 do
      if not (Iarena.is_dead a k) then visit k
    done;
    if !changed then begin
      (* apply any lingering substitutions to operands everywhere *)
      let resolved = Findex.compress_chains subst in
      for k = 0 to n - 1 do
        if not (Iarena.is_dead a k) then begin
          let o = Iarena.op_off a k in
          for s = o to o + Iarena.op_len a k - 1 do
            match Iarena.opnd a s with
            | Reg (r, _) -> (
                match Sym.Tbl.find_opt resolved r with
                | Some v' -> Iarena.set_opnd a k s v'
                | None -> ())
            | _ -> ()
          done
        end
      done;
      if rounds > 0 then go (rounds - 1)
    end
  in
  go 8;
  if Iarena.live_count a = n then (f, false)
  else begin
    let f' = { f with Lmodule.blocks = Iarena.to_blocks a } in
    (match am with
    | Some am ->
        Analysis.seed_findex am f' (Findex.of_arena f' (Iarena.compact a))
    | None -> ());
    (f', true)
  end

let run ?am (m : Lmodule.t) : Lmodule.t =
  Lmodule.map_funcs (fun f -> fst (run_func ?am f)) m
