(** Imperative function builder used by the MLIR lowering and the
    mini-C front-end.  Tracks the current block, generates fresh SSA
    names, and returns [Lvalue.t]s for instruction results. *)

open Linstr
module Sym = Support.Interner

type t = {
  names : Support.Namegen.t;
  mutable cur_label : string option;
  mutable cur_insts : Linstr.t list;  (** reversed *)
  mutable blocks : Lmodule.block list;  (** reversed, finished blocks *)
}

let create () =
  { names = Support.Namegen.create (); cur_label = None; cur_insts = []; blocks = [] }

let fresh_name b base = Support.Namegen.fresh b.names base

let fresh_label b base = Support.Namegen.fresh b.names base

(** Begin a new block.  Any open block must have been terminated. *)
let start_block b label =
  (match b.cur_label with
  | Some l ->
      Support.Err.fail ~pass:"lbuilder"
        "start_block %s: block %s is still open (missing terminator)" label l
  | None -> ());
  b.cur_label <- Some label

let in_block b = b.cur_label <> None

let emit b (i : Linstr.t) =
  (match b.cur_label with
  | None -> Support.Err.fail ~pass:"lbuilder" "emit outside of a block"
  | Some _ -> ());
  b.cur_insts <- i :: b.cur_insts;
  if Linstr.is_terminator i then begin
    let label = Option.get b.cur_label in
    b.blocks <-
      { Lmodule.label = Sym.intern label; insts = List.rev b.cur_insts }
      :: b.blocks;
    b.cur_label <- None;
    b.cur_insts <- []
  end

(** Emit an instruction producing a value. *)
let emit_value b ?(name = "t") ty op =
  let result = fresh_name b name in
  emit b (Linstr.make ~result ~ty op);
  Lvalue.reg result ty

let finish b : Lmodule.block list =
  (match b.cur_label with
  | Some l ->
      Support.Err.fail ~pass:"lbuilder" "finish: block %s not terminated" l
  | None -> ());
  List.rev b.blocks

(* ------------------------------------------------------------------ *)
(* Typed helpers                                                       *)
(* ------------------------------------------------------------------ *)

let ibin b op x y = emit_value b (Lvalue.type_of x) (IBin (op, x, y))
let fbin b op x y = emit_value b (Lvalue.type_of x) (FBin (op, x, y))
let icmp b p x y = emit_value b Ltype.I1 (Icmp (p, x, y))
let fcmp b p x y = emit_value b Ltype.I1 (Fcmp (p, x, y))
let select b c x y = emit_value b (Lvalue.type_of x) (Select (c, x, y))
let freeze b v = emit_value b (Lvalue.type_of v) (Freeze v)

let alloca b ?(count = 1) ~name elem_ty =
  emit_value b ~name (Ltype.ptr elem_ty) (Alloca (elem_ty, count))

(** Alloca producing an opaque pointer (modern lowering style). *)
let alloca_opaque b ?(count = 1) ~name elem_ty =
  emit_value b ~name Ltype.opaque_ptr (Alloca (elem_ty, count))

let load b ty ptr = emit_value b ty (Load (ty, ptr))
let store b v ptr = emit b (Linstr.make (Store (v, ptr)))

let gep b ?(inbounds = true) ?(opaque = false) ~src_ty base idxs =
  (* Result pointer type: walk [src_ty] through the trailing indices. *)
  let rec walk ty = function
    | [] -> ty
    | idx :: rest ->
        walk (Ltype.gep_step ty (Lvalue.const_int_value idx)) rest
  in
  let pointee =
    match idxs with
    | [] -> src_ty
    | _ :: rest -> walk src_ty rest
  in
  let ty = if opaque then Ltype.opaque_ptr else Ltype.ptr pointee in
  emit_value b ty (Gep { inbounds; src_ty; base; idxs })

let cast b c v ty = emit_value b ty (Cast (c, v, ty))

let call b ?(name = "call") ~ret callee args =
  if Ltype.equal ret Ltype.Void then begin
    emit b (Linstr.make (Call { callee; ret; args }));
    Lvalue.Const (Lvalue.CUndef Ltype.Void)
  end
  else emit_value b ~name ret (Call { callee; ret; args })

let extractvalue b agg path ty = emit_value b ty (ExtractValue (agg, path))

let insertvalue b agg v path =
  emit_value b (Lvalue.type_of agg) (InsertValue (agg, v, path))

let phi b ~name ty incoming =
  emit_value b ~name ty
    (Phi (List.map (fun (v, l) -> (v, Sym.intern l)) incoming))

let br b label = emit b (Linstr.make (Br (Sym.intern label)))
let condbr b c t e =
  emit b (Linstr.make (CondBr (c, Sym.intern t, Sym.intern e)))
let ret b v = emit b (Linstr.make (Ret v))
let ret_void b = ret b None

(** Attach metadata to the most recently emitted instruction. *)
let annotate_last b (kvs : (string * Linstr.meta) list) =
  match b.cur_insts with
  | i :: rest -> b.cur_insts <- { i with imeta = i.imeta @ kvs } :: rest
  | [] -> (
      (* last instruction closed a block *)
      match b.blocks with
      | blk :: bs -> (
          match List.rev blk.insts with
          | i :: tl ->
              b.blocks <-
                { blk with insts = List.rev ({ i with imeta = i.imeta @ kvs } :: tl) }
                :: bs
          | [] -> ())
      | [] -> ())
