(** Packed struct-of-arrays encoding of one function body.  See the
    interface for the layout contract; this file keeps the encoding
    and decoding in one place so the two stay in sync. *)

module Sym = Support.Interner

(* ------------------------------------------------------------------ *)
(* Growable vectors.  OCaml 5.1 has no Dynarray; this is the minimal
   push-only subset the pools need.  ['a] is always an immediate or a
   pointer here, never [float], so [data] stays a flat array. *)

type 'a vec = { mutable data : 'a array; mutable len : int }

let vec_make dummy cap = { data = Array.make (max 4 cap) dummy; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) v.data.(0) in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* ------------------------------------------------------------------ *)
(* Opcode words: [tag lor (sub lsl 8) lor flags].                      *)

let tag_ibin = 0
let tag_fbin = 1
let tag_icmp = 2
let tag_fcmp = 3
let tag_alloca = 4
let tag_load = 5
let tag_store = 6
let tag_gep = 7
let tag_cast = 8
let tag_select = 9
let tag_phi = 10
let tag_call = 11
let tag_extractvalue = 12
let tag_insertvalue = 13
let tag_freeze = 14
let tag_ret = 15
let tag_br = 16
let tag_condbr = 17
let tag_switch = 18
let tag_unreachable = 19
let inbounds_bit = 1 lsl 16

let pure_tag t =
  (t >= tag_ibin && t <= tag_fcmp)
  || (t >= tag_gep && t <= tag_freeze && t <> tag_call)

let ibinop_code : Linstr.ibinop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | SDiv -> 3 | UDiv -> 4 | SRem -> 5
  | URem -> 6 | Shl -> 7 | LShr -> 8 | AShr -> 9 | And -> 10 | Or -> 11
  | Xor -> 12

let code_ibinop : int -> Linstr.ibinop = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> SDiv | 4 -> UDiv | 5 -> SRem
  | 6 -> URem | 7 -> Shl | 8 -> LShr | 9 -> AShr | 10 -> And | 11 -> Or
  | _ -> Xor

let fbinop_code : Linstr.fbinop -> int = function
  | FAdd -> 0 | FSub -> 1 | FMul -> 2 | FDiv -> 3 | FRem -> 4

let code_fbinop : int -> Linstr.fbinop = function
  | 0 -> FAdd | 1 -> FSub | 2 -> FMul | 3 -> FDiv | _ -> FRem

let icmp_code : Linstr.icmp -> int = function
  | IEq -> 0 | INe -> 1 | ISlt -> 2 | ISle -> 3 | ISgt -> 4 | ISge -> 5
  | IUlt -> 6 | IUle -> 7 | IUgt -> 8 | IUge -> 9

let code_icmp : int -> Linstr.icmp = function
  | 0 -> IEq | 1 -> INe | 2 -> ISlt | 3 -> ISle | 4 -> ISgt | 5 -> ISge
  | 6 -> IUlt | 7 -> IUle | 8 -> IUgt | _ -> IUge

let fcmp_code : Linstr.fcmp -> int = function
  | FOeq -> 0 | FOne -> 1 | FOlt -> 2 | FOle -> 3 | FOgt -> 4 | FOge -> 5
  | FOrd -> 6 | FUno -> 7

let code_fcmp : int -> Linstr.fcmp = function
  | 0 -> FOeq | 1 -> FOne | 2 -> FOlt | 3 -> FOle | 4 -> FOgt | 5 -> FOge
  | 6 -> FOrd | _ -> FUno

let cast_code : Linstr.cast -> int = function
  | Trunc -> 0 | Zext -> 1 | Sext -> 2 | Fptrunc -> 3 | Fpext -> 4
  | Fptosi -> 5 | Sitofp -> 6 | Ptrtoint -> 7 | Inttoptr -> 8
  | Bitcast -> 9

let code_cast : int -> Linstr.cast = function
  | 0 -> Trunc | 1 -> Zext | 2 -> Sext | 3 -> Fptrunc | 4 -> Fpext
  | 5 -> Fptosi | 6 -> Sitofp | 7 -> Ptrtoint | 8 -> Inttoptr
  | _ -> Bitcast

(* ------------------------------------------------------------------ *)

(* Constant identity key: floats by bit pattern so NaN constants still
   intern to one index (structural [=] on floats fails on NaN). *)
type const_key = int * int64 * Ltype.t

let const_key (c : Lvalue.const) : const_key =
  match c with
  | CInt (v, ty) -> (0, Int64.of_int v, ty)
  | CFloat (v, ty) -> (1, Int64.bits_of_float v, ty)
  | CNull ty -> (2, 0L, ty)
  | CUndef ty -> (3, 0L, ty)
  | CZero ty -> (4, 0L, ty)

(* Row flag bits, one byte per row. *)
let fl_dead = 1
let fl_dirty = 2

type t = {
  n : int;
  opc : int array;
  res : Sym.t array;
  rty : int array;  (** result type, type-pool index *)
  op_off : int array;
  op_len : int array;
  aux0 : int array;
  aux1 : int array;
  sof : int array;  (** label-pool span start; 0 when no labels *)
  meta : int array;  (** meta-pool index; -1 when [imeta] is empty *)
  blk : int array;
  flags : Bytes.t;
  orig : Linstr.t array;  (** boxed rows: input record, or memoised decode *)
  mutable live : int;
  (* blocks *)
  blk_label : Sym.t array;
  blk_off : int array;  (** length [n_blocks + 1]; block bi spans
                            [blk_off.(bi), blk_off.(bi+1)) *)
  (* shared pools (append-only; {!compact} copies share them) *)
  pool : Lvalue.t vec;  (** operand values, spans per row *)
  pool_cix : int vec;  (** memoised constant-pool index; -1 = not yet *)
  st : Sym.t vec;  (** labels: successors, phi preds, switch cases *)
  xt : int vec;  (** switch case values, aggregate paths *)
  types : Ltype.t vec;
  ty_tbl : (Ltype.t, int) Hashtbl.t;
  consts : Lvalue.const vec;
  const_tbl : (const_key, int) Hashtbl.t;
  strs : string vec;
  str_tbl : (string, int) Hashtbl.t;
  metas : (string * Linstr.meta) list vec;
}

let intern_ty t ty =
  match Hashtbl.find_opt t.ty_tbl ty with
  | Some ix -> ix
  | None ->
      let ix = t.types.len in
      vec_push t.types ty;
      Hashtbl.replace t.ty_tbl ty ix;
      ix

let intern_const t c =
  let k = const_key c in
  match Hashtbl.find_opt t.const_tbl k with
  | Some ix -> ix
  | None ->
      let ix = t.consts.len in
      vec_push t.consts c;
      Hashtbl.replace t.const_tbl k ix;
      ix

let intern_str t s =
  match Hashtbl.find_opt t.str_tbl s with
  | Some ix -> ix
  | None ->
      let ix = t.strs.len in
      vec_push t.strs s;
      Hashtbl.replace t.str_tbl s ix;
      ix

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let of_func (f : Lmodule.func) : t =
  let n =
    List.fold_left
      (fun acc (b : Lmodule.block) -> acc + List.length b.insts)
      0 f.blocks
  in
  let n_blocks = List.length f.blocks in
  let dummy = Linstr.make Linstr.Unreachable in
  let t =
    {
      n;
      opc = Array.make n 0;
      res = Array.make n Sym.empty;
      rty = Array.make n 0;
      op_off = Array.make n 0;
      op_len = Array.make n 0;
      aux0 = Array.make n 0;
      aux1 = Array.make n 0;
      sof = Array.make n 0;
      meta = Array.make n (-1);
      blk = Array.make n 0;
      flags = Bytes.make n '\000';
      orig = Array.make n dummy;
      live = n;
      blk_label = Array.make n_blocks Sym.empty;
      blk_off = Array.make (n_blocks + 1) 0;
      pool = vec_make Lvalue.(Const (CUndef Ltype.Void)) (2 * n);
      pool_cix = vec_make (-1) (2 * n);
      st = vec_make Sym.empty 16;
      xt = vec_make 0 16;
      types = vec_make Ltype.Void 16;
      ty_tbl = Hashtbl.create 16;
      consts = vec_make Lvalue.(CUndef Ltype.Void) 16;
      const_tbl = Hashtbl.create 16;
      strs = vec_make "" 8;
      str_tbl = Hashtbl.create 8;
      metas = vec_make [] 4;
    }
  in
  (* [Void] is type index 0, so zero-initialised [rty] rows are honest. *)
  ignore (intern_ty t Ltype.Void);
  let push_v v =
    vec_push t.pool v;
    vec_push t.pool_cix (-1)
  in
  let k = ref 0 in
  List.iteri
    (fun bi (b : Lmodule.block) ->
      t.blk_label.(bi) <- b.label;
      t.blk_off.(bi) <- !k;
      List.iter
        (fun (i : Linstr.t) ->
          let r = !k in
          incr k;
          t.orig.(r) <- i;
          t.res.(r) <- i.result;
          if i.ty != Ltype.Void then t.rty.(r) <- intern_ty t i.ty;
          if i.imeta <> [] then begin
            t.meta.(r) <- t.metas.len;
            vec_push t.metas i.imeta
          end;
          t.blk.(r) <- bi;
          t.op_off.(r) <- t.pool.len;
          (match i.op with
          | IBin (o, a, b) ->
              t.opc.(r) <- tag_ibin lor (ibinop_code o lsl 8);
              push_v a;
              push_v b
          | FBin (o, a, b) ->
              t.opc.(r) <- tag_fbin lor (fbinop_code o lsl 8);
              push_v a;
              push_v b
          | Icmp (o, a, b) ->
              t.opc.(r) <- tag_icmp lor (icmp_code o lsl 8);
              push_v a;
              push_v b
          | Fcmp (o, a, b) ->
              t.opc.(r) <- tag_fcmp lor (fcmp_code o lsl 8);
              push_v a;
              push_v b
          | Alloca (ty, count) ->
              t.opc.(r) <- tag_alloca;
              t.aux0.(r) <- intern_ty t ty;
              t.aux1.(r) <- count
          | Load (ty, p) ->
              t.opc.(r) <- tag_load;
              t.aux0.(r) <- intern_ty t ty;
              push_v p
          | Store (v, p) ->
              t.opc.(r) <- tag_store;
              push_v v;
              push_v p
          | Gep { inbounds; src_ty; base; idxs } ->
              t.opc.(r) <-
                (tag_gep lor if inbounds then inbounds_bit else 0);
              t.aux0.(r) <- intern_ty t src_ty;
              push_v base;
              List.iter push_v idxs
          | Cast (c, v, ty) ->
              t.opc.(r) <- tag_cast lor (cast_code c lsl 8);
              t.aux0.(r) <- intern_ty t ty;
              push_v v
          | Select (c, a, b) ->
              t.opc.(r) <- tag_select;
              push_v c;
              push_v a;
              push_v b
          | Phi incoming ->
              t.opc.(r) <- tag_phi;
              t.sof.(r) <- t.st.len;
              List.iter
                (fun (v, l) ->
                  push_v v;
                  vec_push t.st l)
                incoming
          | Call { callee; ret; args } ->
              t.opc.(r) <- tag_call;
              t.aux0.(r) <- intern_str t callee;
              t.aux1.(r) <- intern_ty t ret;
              List.iter push_v args
          | ExtractValue (a, path) ->
              t.opc.(r) <- tag_extractvalue;
              t.aux0.(r) <- t.xt.len;
              t.aux1.(r) <- List.length path;
              push_v a;
              List.iter (vec_push t.xt) path
          | InsertValue (a, v, path) ->
              t.opc.(r) <- tag_insertvalue;
              t.aux0.(r) <- t.xt.len;
              t.aux1.(r) <- List.length path;
              push_v a;
              push_v v;
              List.iter (vec_push t.xt) path
          | Freeze v ->
              t.opc.(r) <- tag_freeze;
              push_v v
          | Ret (Some v) ->
              t.opc.(r) <- tag_ret lor (1 lsl 8);
              push_v v
          | Ret None -> t.opc.(r) <- tag_ret
          | Br l ->
              t.opc.(r) <- tag_br;
              t.sof.(r) <- t.st.len;
              vec_push t.st l
          | CondBr (c, l1, l2) ->
              t.opc.(r) <- tag_condbr;
              t.sof.(r) <- t.st.len;
              push_v c;
              vec_push t.st l1;
              vec_push t.st l2
          | Switch (v, d, cases) ->
              t.opc.(r) <- tag_switch;
              t.sof.(r) <- t.st.len;
              t.aux0.(r) <- t.xt.len;
              t.aux1.(r) <- List.length cases;
              push_v v;
              vec_push t.st d;
              List.iter
                (fun (c, l) ->
                  vec_push t.xt c;
                  vec_push t.st l)
                cases
          | Unreachable -> t.opc.(r) <- tag_unreachable);
          t.op_len.(r) <- t.pool.len - t.op_off.(r))
        b.insts)
    f.blocks;
  t.blk_off.(n_blocks) <- n;
  t

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

let n_instrs t = t.n
let n_blocks t = Array.length t.blk_label
let block_start t bi = t.blk_off.(bi)
let block_stop t bi = t.blk_off.(bi + 1)
let block_label t bi = t.blk_label.(bi)
let block_of t k = t.blk.(k)
let tag t k = t.opc.(k) land 0xff
let sub t k = (t.opc.(k) lsr 8) land 0xff
let ibinop t k = code_ibinop (sub t k)
let fbinop t k = code_fbinop (sub t k)
let icmp t k = code_icmp (sub t k)
let fcmp t k = code_fcmp (sub t k)
let cast t k = code_cast (sub t k)
let opword t k = t.opc.(k)
let inbounds t k = t.opc.(k) land inbounds_bit <> 0
let result t k = t.res.(k)
let result_ty t k = t.types.data.(t.rty.(k))
let op_off t k = t.op_off.(k)
let op_len t k = t.op_len.(k)
let aux0 t k = t.aux0.(k)
let aux1 t k = t.aux1.(k)
let ty_of_ix t ix = t.types.data.(ix)
let callee t k = t.strs.data.(t.aux0.(k))
let xt t i = t.xt.data.(i)
let label_off t k = t.sof.(k)
let label_at t i = t.st.data.(i)
let pool_len t = t.pool.len
let opnd t s = t.pool.data.(s)

(* Keys pack the operand kind in the low two bits so a register and a
   constant sharing an id never collide.  Registers key by symbol
   alone — SSA gives each one type per function; globals fold in the
   interned type (the same global can be referenced at several pointer
   types), constants are pool-complete already. *)
let key_of_value t (v : Lvalue.t) =
  match v with
  | Lvalue.Reg (n, _) -> (n :> int) lsl 2
  | Lvalue.Global (n, ty) ->
      (intern_ty t ty lsl 24) lxor (((n :> int) lsl 2) lor 1)
  | Lvalue.Const c -> (intern_const t c lsl 2) lor 2

let opnd_key t s =
  match t.pool.data.(s) with
  | Lvalue.Reg (n, _) -> (n :> int) lsl 2
  | Lvalue.Global (n, ty) ->
      (intern_ty t ty lsl 24) lxor (((n :> int) lsl 2) lor 1)
  | Lvalue.Const c ->
      let cix =
        match t.pool_cix.data.(s) with
        | -1 ->
            let ix = intern_const t c in
            t.pool_cix.data.(s) <- ix;
            ix
        | ix -> ix
      in
      (cix lsl 2) lor 2

(* ------------------------------------------------------------------ *)
(* Flags and mutation                                                  *)

let get_fl t k = Char.code (Bytes.unsafe_get t.flags k)
let is_dead t k = get_fl t k land fl_dead <> 0
let is_dirty t k = get_fl t k land fl_dirty <> 0

let kill t k =
  if not (is_dead t k) then begin
    Bytes.unsafe_set t.flags k (Char.chr (get_fl t k lor fl_dead));
    t.live <- t.live - 1
  end

let mark_dirty t k =
  Bytes.unsafe_set t.flags k (Char.chr (get_fl t k lor fl_dirty))

let set_opnd t k s v =
  t.pool.data.(s) <- v;
  t.pool_cix.data.(s) <- -1;
  mark_dirty t k

let push_copy t s =
  vec_push t.pool t.pool.data.(s);
  vec_push t.pool_cix t.pool_cix.data.(s)

let set_span t k ~off ~len =
  t.op_off.(k) <- off;
  t.op_len.(k) <- len;
  mark_dirty t k

let set_aux0 t k ix = t.aux0.(k) <- ix

let set_inbounds t k b =
  t.opc.(k) <-
    (if b then t.opc.(k) lor inbounds_bit
     else t.opc.(k) land lnot inbounds_bit);
  mark_dirty t k

let live_count t = t.live

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let decode_op t k : Linstr.opcode =
  let w = t.opc.(k) in
  let sb = (w lsr 8) land 0xff in
  let o = t.op_off.(k) and l = t.op_len.(k) in
  let v i = t.pool.data.(o + i) in
  match w land 0xff with
  | 0 -> IBin (code_ibinop sb, v 0, v 1)
  | 1 -> FBin (code_fbinop sb, v 0, v 1)
  | 2 -> Icmp (code_icmp sb, v 0, v 1)
  | 3 -> Fcmp (code_fcmp sb, v 0, v 1)
  | 4 -> Alloca (t.types.data.(t.aux0.(k)), t.aux1.(k))
  | 5 -> Load (t.types.data.(t.aux0.(k)), v 0)
  | 6 -> Store (v 0, v 1)
  | 7 ->
      Gep
        {
          inbounds = w land inbounds_bit <> 0;
          src_ty = t.types.data.(t.aux0.(k));
          base = v 0;
          idxs = List.init (l - 1) (fun i -> v (i + 1));
        }
  | 8 -> Cast (code_cast sb, v 0, t.types.data.(t.aux0.(k)))
  | 9 -> Select (v 0, v 1, v 2)
  | 10 ->
      let sof = t.sof.(k) in
      Phi (List.init l (fun i -> (v i, t.st.data.(sof + i))))
  | 11 ->
      Call
        {
          callee = t.strs.data.(t.aux0.(k));
          ret = t.types.data.(t.aux1.(k));
          args = List.init l v;
        }
  | 12 ->
      let xo = t.aux0.(k) in
      ExtractValue (v 0, List.init t.aux1.(k) (fun i -> t.xt.data.(xo + i)))
  | 13 ->
      let xo = t.aux0.(k) in
      InsertValue
        (v 0, v 1, List.init t.aux1.(k) (fun i -> t.xt.data.(xo + i)))
  | 14 -> Freeze (v 0)
  | 15 -> if sb = 1 then Ret (Some (v 0)) else Ret None
  | 16 -> Br t.st.data.(t.sof.(k))
  | 17 -> CondBr (v 0, t.st.data.(t.sof.(k)), t.st.data.(t.sof.(k) + 1))
  | 18 ->
      let sof = t.sof.(k) and xo = t.aux0.(k) in
      Switch
        ( v 0,
          t.st.data.(sof),
          List.init t.aux1.(k) (fun i ->
              (t.xt.data.(xo + i), t.st.data.(sof + 1 + i))) )
  | _ -> Unreachable

let instr t k =
  if is_dirty t k then begin
    let i = { (t.orig.(k)) with op = decode_op t k } in
    t.orig.(k) <- i;
    Bytes.unsafe_set t.flags k (Char.chr (get_fl t k land lnot fl_dirty));
    i
  end
  else t.orig.(k)

let decode_packed t k : Linstr.t =
  {
    result = t.res.(k);
    ty = t.types.data.(t.rty.(k));
    op = decode_op t k;
    imeta = (match t.meta.(k) with -1 -> [] | m -> t.metas.data.(m));
  }

let to_blocks t : Lmodule.block list =
  List.init (n_blocks t) (fun bi ->
      let insts = ref [] in
      for k = t.blk_off.(bi + 1) - 1 downto t.blk_off.(bi) do
        if not (is_dead t k) then insts := instr t k :: !insts
      done;
      { Lmodule.label = t.blk_label.(bi); insts = !insts })

(* ------------------------------------------------------------------ *)

(* Drop dead rows, materialise dirty ones, share the pools (they are
   append-only, so old spans stay valid in the copy). *)
let compact t : t =
  let n' = t.live in
  let nb = n_blocks t in
  let c =
    {
      t with
      n = n';
      opc = Array.make n' 0;
      res = Array.make n' Sym.empty;
      rty = Array.make n' 0;
      op_off = Array.make n' 0;
      op_len = Array.make n' 0;
      aux0 = Array.make n' 0;
      aux1 = Array.make n' 0;
      sof = Array.make n' 0;
      meta = Array.make n' (-1);
      blk = Array.make n' 0;
      flags = Bytes.make n' '\000';
      orig = Array.make n' (Linstr.make Linstr.Unreachable);
      live = n';
      blk_label = Array.copy t.blk_label;
      blk_off = Array.make (nb + 1) 0;
    }
  in
  let k' = ref 0 in
  for bi = 0 to nb - 1 do
    c.blk_off.(bi) <- !k';
    for k = t.blk_off.(bi) to t.blk_off.(bi + 1) - 1 do
      if not (is_dead t k) then begin
        let r = !k' in
        incr k';
        c.opc.(r) <- t.opc.(k);
        c.res.(r) <- t.res.(k);
        c.rty.(r) <- t.rty.(k);
        c.op_off.(r) <- t.op_off.(k);
        c.op_len.(r) <- t.op_len.(k);
        c.aux0.(r) <- t.aux0.(k);
        c.aux1.(r) <- t.aux1.(k);
        c.sof.(r) <- t.sof.(k);
        c.meta.(r) <- t.meta.(k);
        c.blk.(r) <- bi;
        c.orig.(r) <- instr t k
      end
    done
  done;
  c.blk_off.(nb) <- n';
  c

(* ------------------------------------------------------------------ *)

let check t : (unit, string) result =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  let nb = n_blocks t in
  if t.blk_off.(0) <> 0 || t.blk_off.(nb) <> t.n then
    fail "block offsets do not cover the arena";
  for bi = 0 to nb - 1 do
    if t.blk_off.(bi) > t.blk_off.(bi + 1) then
      fail "block %d spans backwards" bi
  done;
  let live = ref 0 in
  for k = 0 to t.n - 1 do
    if not (is_dead t k) then incr live;
    let o = t.op_off.(k) and l = t.op_len.(k) in
    if o < 0 || l < 0 || o + l > t.pool.len then
      fail "row %d operand span [%d,%d) out of pool bounds %d" k o (o + l)
        t.pool.len;
    let bi = t.blk.(k) in
    if bi < 0 || bi >= nb then fail "row %d block %d out of range" k bi
    else if k < t.blk_off.(bi) || k >= t.blk_off.(bi + 1) then
      fail "row %d outside its block %d span" k bi;
    if t.rty.(k) < 0 || t.rty.(k) >= t.types.len then
      fail "row %d result-type index out of range" k;
    let tg = tag t k in
    let st_need =
      if tg = tag_br then 1
      else if tg = tag_condbr then 2
      else if tg = tag_switch then 1 + t.aux1.(k)
      else if tg = tag_phi then l
      else 0
    in
    if st_need > 0 && t.sof.(k) + st_need > t.st.len then
      fail "row %d label span out of bounds" k;
    if
      (tg = tag_switch || tg = tag_extractvalue || tg = tag_insertvalue)
      && t.aux0.(k) + t.aux1.(k) > t.xt.len
    then fail "row %d extra span out of bounds" k
  done;
  if !live <> t.live then
    fail "live count %d does not match %d live rows" t.live !live;
  match !err with None -> Ok () | Some e -> Error e
