(** Pass manager for LLVM-level transforms: named passes, pipelines,
    optional verification between passes, per-pass timing, and an
    {!Analysis} manager shared across the pipeline.

    Every pass declares which analyses it {e preserves}; after the
    pass runs, {!Analysis.keep} rebases exactly those onto the new
    function values and drops the rest.  Passes (and the verifier)
    query the shared manager instead of rebuilding analyses, so a
    CFG-preserving stretch of the pipeline computes the CFG, dominator
    tree and loop nest once.  A pass that preserves nothing must
    declare [preserves = []] — over-declaring breaks the rebase
    contract documented on {!Cfg.rebase}.

    Passes that transform one function at a time additionally expose
    their per-function entry as [fn_run]; {!run_pipeline_parallel}
    fans such a pass tail out across worker domains when {!Parsafe}
    proves the module race-free. *)

type pass = {
  name : string;
  preserves : Analysis.kind list;
      (** analyses still valid (after rebase) on this pass's output *)
  run : Analysis.t -> Lmodule.t -> Lmodule.t;
  fn_run : (Analysis.t -> Lmodule.func -> Lmodule.func) option;
      (** function-local entry ([run] must equal mapping it over the
          module's functions); [None] for module-level passes *)
}

val inline : pass
val mem2reg : pass
val dce : pass
val constfold : pass
val cse : pass
val simplifycfg : pass
val licm : pass

(** The -O2-flavoured cleanup pipeline both flows run before HLS. *)
val default_pipeline : pass list

type timing = { pass_name : string; seconds : float }

(** Run a pipeline.  With [~verify:true] (default) the module is
    verified once after the final pass: the verifier's checks are
    properties of the output, so one end-of-pipeline run rejects
    exactly what per-pass verification would, and the incremental
    verifier re-checks only functions that changed since their last
    accepted value.  [~verify_each:true] restores verification after
    {e every} pass — the debugging mode that attributes a miscompile
    to the pass that introduced it.  [?trace] receives one
    {!Support.Tracing.event} per pass (stage ["llvm-opt"]) plus one
    per analysis query (stage ["analysis"], pass ["<kind>:hit"] /
    ["<kind>:compute"]).  Returns the transformed module and per-pass
    timings. *)
val run_pipeline :
  ?verify:bool ->
  ?verify_each:bool ->
  ?trace:Support.Tracing.hook ->
  pass list ->
  Lmodule.t ->
  Lmodule.t * timing list

(** How to fan function-local work out, supplied by the caller (the
    driver's domain pool — this library stays below the driver in the
    layering).  [map] must preserve input order and apply its callback
    exactly once per element.  [now] is a wall clock for worker-side
    timings: [Sys.time] measures whole-process CPU time and would
    over-count under parallel domains. *)
type fanout = {
  jobs : int;
  now : unit -> float;
  map :
    (Lmodule.func -> Lmodule.func * timing list) ->
    Lmodule.func list ->
    (Lmodule.func * timing list) list;
}

(** Sequential stand-in fanout ([jobs = 1], [List.map], [Sys.time]). *)
val inline_fanout : fanout

type par_status =
  | Ran_parallel of int
      (** function-local tail fanned out over this many functions *)
  | Fell_back of string  (** sequential, and why *)

val par_status_to_string : par_status -> string

(** Longest suffix of the pipeline in which every pass has a [fn_run]
    entry, and the module-level prologue before it.  Exposed for tests
    and diagnostics. *)
val split_func_local : pass list -> pass list * pass list

(** Like {!run_pipeline}, but when {!Parsafe.check} proves the module
    race-free, the function-local pass tail runs per function on
    [fanout] (the module-level prologue — inlining — stays
    sequential).  Output is byte-identical to {!run_pipeline} for any
    worker count.  Falls back to the full sequential pipeline (with
    the reason in the status) when [fanout.jobs <= 1], the module has
    at most one function, the verdict is [Unsafe], or no pass in the
    pipeline tail is function-local.

    With [~verify:true], each worker verifies its function once after
    the full tail (which also covers the sequential prologue's output)
    — a miscompile is still caught before the module is reassembled,
    but is attributed to the pipeline as a whole rather than to one
    pass (re-run sequentially with [~verify_each:true] to bisect). *)
val run_pipeline_parallel :
  ?verify:bool ->
  ?trace:Support.Tracing.hook ->
  fanout:fanout ->
  pass list ->
  Lmodule.t ->
  Lmodule.t * timing list * par_status

val by_name : string -> pass option
