(** Pass manager for LLVM-level transforms: named passes, pipelines,
    optional verification between passes, per-pass timing, and an
    {!Analysis} manager shared across the pipeline.

    Every pass declares which analyses it {e preserves}; after the
    pass runs, {!Analysis.keep} rebases exactly those onto the new
    function values and drops the rest.  Passes (and the verifier)
    query the shared manager instead of rebuilding analyses, so a
    CFG-preserving stretch of the pipeline computes the CFG, dominator
    tree and loop nest once.  A pass that preserves nothing must
    declare [preserves = []] — over-declaring breaks the rebase
    contract documented on {!Cfg.rebase}. *)

type pass = {
  name : string;
  preserves : Analysis.kind list;
      (** analyses still valid (after rebase) on this pass's output *)
  run : Analysis.t -> Lmodule.t -> Lmodule.t;
}

val inline : pass
val mem2reg : pass
val dce : pass
val constfold : pass
val cse : pass
val simplifycfg : pass
val licm : pass

(** The -O2-flavoured cleanup pipeline both flows run before HLS. *)
val default_pipeline : pass list

type timing = { pass_name : string; seconds : float }

(** Run a pipeline.  With [~verify:true] (default) the module is
    verified after every pass so a miscompiling pass is caught at its
    source.  [?trace] receives one {!Support.Tracing.event} per pass
    (stage ["llvm-opt"]) plus one per analysis query (stage
    ["analysis"], pass ["<kind>:hit"] / ["<kind>:compute"]).  Returns
    the transformed module and per-pass timings. *)
val run_pipeline :
  ?verify:bool ->
  ?trace:Support.Tracing.hook ->
  pass list ->
  Lmodule.t ->
  Lmodule.t * timing list

val by_name : string -> pass option
