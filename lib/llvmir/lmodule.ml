(** LLVM IR containers: blocks, functions, globals, modules — plus the
    rewrite utilities every pass builds on. *)

type param = {
  pname : string;
  pty : Ltype.t;
  pattrs : (string * string) list;
      (** e.g. [("fpga.interface", "bram")], [("partition.factor", "4")] *)
}

type block = { label : string; insts : Linstr.t list }

type func = {
  fname : string;
  ret_ty : Ltype.t;
  params : param list;
  blocks : block list;  (** head = entry *)
  fattrs : (string * string) list;
}

type global = {
  gname : string;
  gty : Ltype.t;  (** content type *)
  ginit : Lvalue.const option;
  gconst : bool;
}

(** External declaration (intrinsics, HLS spec ops). *)
type decl = { dname : string; dret : Ltype.t; dargs : Ltype.t list }

type t = {
  mname : string;
  funcs : func list;
  globals : global list;
  decls : decl list;
}

let empty name = { mname = name; funcs = []; globals = []; decls = [] }

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Lmodule.find_func_exn: no function @" ^ name)

let find_block f label = List.find_opt (fun b -> b.label = label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Lmodule.find_block_exn: no block %%%s in @%s" label
           f.fname)

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Lmodule.entry: function @" ^ f.fname ^ " has no blocks")

let find_decl m name = List.find_opt (fun d -> d.dname = name) m.decls

(** Add a declaration if not already present. *)
let ensure_decl m (d : decl) =
  if find_decl m d.dname <> None then m else { m with decls = d :: m.decls }

let replace_func m f =
  {
    m with
    funcs = List.map (fun g -> if g.fname = f.fname then f else g) m.funcs;
  }

let map_funcs fn m = { m with funcs = List.map fn m.funcs }

(** Total instruction count — the "IR size" metric pass tracing
    reports deltas of. *)
let instr_count (m : t) : int =
  List.fold_left
    (fun acc f ->
      List.fold_left (fun acc b -> acc + List.length b.insts) acc f.blocks)
    0 m.funcs

(* ------------------------------------------------------------------ *)
(* Traversal / rewriting                                              *)
(* ------------------------------------------------------------------ *)

let iter_insts f (fn : func) =
  List.iter (fun b -> List.iter f b.insts) fn.blocks

let fold_insts f acc (fn : func) =
  List.fold_left
    (fun acc b -> List.fold_left f acc b.insts)
    acc fn.blocks

let inst_count fn = fold_insts (fun n _ -> n + 1) 0 fn

(** Rewrite every instruction; [f] returns the replacement list. *)
let rewrite_insts f (fn : func) =
  {
    fn with
    blocks =
      List.map
        (fun b -> { b with insts = List.concat_map f b.insts })
        fn.blocks;
  }

(** Map all operand values through [f] everywhere in the function. *)
let map_values f (fn : func) =
  rewrite_insts (fun i -> [ Linstr.map_operands f i ]) fn

(** Substitute registers by name: occurrences of [Reg (n, _)] where
    [n] is bound in [subst] are replaced by the bound value. *)
let substitute (subst : (string, Lvalue.t) Hashtbl.t) (fn : func) =
  let rec resolve v =
    match v with
    | Lvalue.Reg (n, _) -> (
        match Hashtbl.find_opt subst n with
        | Some v' when not (Lvalue.equal v' v) -> resolve v'
        | _ -> v)
    | _ -> v
  in
  map_values resolve fn

(** All register names defined in the function (params + results). *)
let defined_names (fn : func) =
  let tbl = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace tbl p.pname ()) fn.params;
  iter_insts
    (fun i -> if i.Linstr.result <> "" then Hashtbl.replace tbl i.Linstr.result ())
    fn;
  tbl

(** Names used as operands anywhere. *)
let used_names (fn : func) =
  let tbl = Hashtbl.create 64 in
  iter_insts
    (fun i ->
      List.iter
        (fun v ->
          match v with
          | Lvalue.Reg (n, _) -> Hashtbl.replace tbl n ()
          | _ -> ())
        (Linstr.operands i))
    fn;
  tbl

(** Fresh-name generator seeded with every name already in [fn]. *)
let namegen (fn : func) =
  let g = Support.Namegen.create () in
  List.iter (fun p -> Support.Namegen.reserve g p.pname) fn.params;
  List.iter (fun b -> Support.Namegen.reserve g b.label) fn.blocks;
  iter_insts
    (fun i -> if i.Linstr.result <> "" then Support.Namegen.reserve g i.Linstr.result)
    fn;
  g

(** Definition map: register name -> defining instruction. *)
let def_map (fn : func) =
  let tbl = Hashtbl.create 64 in
  iter_insts
    (fun i -> if i.Linstr.result <> "" then Hashtbl.replace tbl i.Linstr.result i)
    fn;
  tbl

(** Root of a pointer value: walk GEP/bitcast chains back to the
    underlying parameter, alloca or global name. *)
let rec base_pointer (defs : (string, Linstr.t) Hashtbl.t) (v : Lvalue.t) :
    string option =
  match v with
  | Lvalue.Reg (n, _) -> (
      match Hashtbl.find_opt defs n with
      | Some { Linstr.op = Linstr.Gep { base; _ }; _ } -> base_pointer defs base
      | Some { Linstr.op = Linstr.Cast (Linstr.Bitcast, src, _); _ } ->
          base_pointer defs src
      | Some { Linstr.op = Linstr.Alloca _; _ } -> Some n
      | Some _ -> Some n
      | None -> Some n (* parameter *))
  | Lvalue.Global (n, _) -> Some n
  | _ -> None

(** Use counts: register name -> number of operand occurrences. *)
let use_counts (fn : func) =
  let tbl = Hashtbl.create 64 in
  iter_insts
    (fun i ->
      List.iter
        (function
          | Lvalue.Reg (n, _) ->
              Hashtbl.replace tbl n
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n))
          | _ -> ())
        (Linstr.operands i))
    fn;
  tbl
