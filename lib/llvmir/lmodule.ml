(** LLVM IR containers: blocks, functions, globals, modules — plus the
    rewrite utilities every pass builds on.

    Block labels are interned symbols; per-function def/use/def-map
    tables live in {!Findex} (built once per function and shared), not
    here. *)

module Sym = Support.Interner

type param = {
  pname : string;
  pty : Ltype.t;
  pattrs : (string * string) list;
      (** e.g. [("fpga.interface", "bram")], [("partition.factor", "4")] *)
}

type block = { label : Sym.t; insts : Linstr.t list }

type func = {
  fname : string;
  ret_ty : Ltype.t;
  params : param list;
  blocks : block list;  (** head = entry *)
  fattrs : (string * string) list;
}

type global = {
  gname : string;
  gty : Ltype.t;  (** content type *)
  ginit : Lvalue.const option;
  gconst : bool;
}

(** External declaration (intrinsics, HLS spec ops). *)
type decl = { dname : string; dret : Ltype.t; dargs : Ltype.t list }

type t = {
  mname : string;
  funcs : func list;
  globals : global list;
  decls : decl list;
}

let empty name = { mname = name; funcs = []; globals = []; decls = [] }

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Lmodule.find_func_exn: no function @" ^ name)

let find_block f label =
  List.find_opt (fun b -> Sym.equal b.label label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Lmodule.find_block_exn: no block %%%s in @%s"
           (Sym.name label) f.fname)

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Lmodule.entry: function @" ^ f.fname ^ " has no blocks")

let find_decl m name = List.find_opt (fun d -> d.dname = name) m.decls

(** Add a declaration if not already present. *)
let ensure_decl m (d : decl) =
  if find_decl m d.dname <> None then m else { m with decls = d :: m.decls }

let replace_func m f =
  {
    m with
    funcs = List.map (fun g -> if g.fname = f.fname then f else g) m.funcs;
  }

let map_funcs fn m = { m with funcs = List.map fn m.funcs }

(** [share_unchanged ~prev m] — wherever a function of [m] is
    structurally equal to the same-named function of [prev], reuse
    [prev]'s physical value.  Passes that rebuild every function
    unconditionally (list-rewriting transforms) destroy the physical
    identity the {!Analysis} caches and the incremental verifier key
    on; running their output through this restores it, so a pass that
    changed nothing costs nothing downstream.  Structural equality
    uses the polymorphic compare (total on this tree, NaN-safe), so a
    restored value prints byte-identically by construction. *)
let share_unchanged ~(prev : t) (m : t) : t =
  if prev == m then m
  else begin
    let old = Hashtbl.create 16 in
    List.iter (fun (f : func) -> Hashtbl.replace old f.fname f) prev.funcs;
    let shared = ref false in
    let funcs =
      List.map
        (fun (f : func) ->
          match Hashtbl.find_opt old f.fname with
          | Some fo when fo == f -> f
          | Some fo when Stdlib.compare fo f = 0 ->
              shared := true;
              fo
          | _ -> f)
        m.funcs
    in
    if !shared then { m with funcs } else m
  end

(** Total instruction count — the "IR size" metric pass tracing
    reports deltas of. *)
let instr_count (m : t) : int =
  List.fold_left
    (fun acc f ->
      List.fold_left (fun acc b -> acc + List.length b.insts) acc f.blocks)
    0 m.funcs

(* ------------------------------------------------------------------ *)
(* Traversal / rewriting                                              *)
(* ------------------------------------------------------------------ *)

let iter_insts f (fn : func) =
  List.iter (fun b -> List.iter f b.insts) fn.blocks

let fold_insts f acc (fn : func) =
  List.fold_left
    (fun acc b -> List.fold_left f acc b.insts)
    acc fn.blocks

let inst_count fn = fold_insts (fun n _ -> n + 1) 0 fn

(** Rewrite every instruction; [f] returns the replacement list. *)
let rewrite_insts f (fn : func) =
  {
    fn with
    blocks =
      List.map
        (fun b -> { b with insts = List.concat_map f b.insts })
        fn.blocks;
  }

(** Map all operand values through [f] everywhere in the function. *)
let map_values f (fn : func) =
  rewrite_insts (fun i -> [ Linstr.map_operands f i ]) fn

(** Fresh-name generator seeded with every name already in [fn]. *)
let namegen (fn : func) =
  let g = Support.Namegen.create () in
  List.iter (fun p -> Support.Namegen.reserve g p.pname) fn.params;
  List.iter (fun b -> Support.Namegen.reserve g (Sym.name b.label)) fn.blocks;
  iter_insts
    (fun i ->
      if not (Sym.is_empty i.Linstr.result) then
        Support.Namegen.reserve g (Sym.name i.Linstr.result))
    fn;
  g
