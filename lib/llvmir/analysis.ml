(** LLVM-style analysis manager.

    Each function-level analysis ({!Findex}, {!Cfg}, {!Dominance},
    {!Loop_info}) is computed at most once per (function, version):
    passes query the manager instead of building their own tables, and
    {!Pass.run_pipeline} tells the manager after every pass which
    analyses that pass {e preserves}.  Preserved analyses are rebased
    onto the rewritten function value and survive to the next pass; the
    rest are dropped.

    Soundness does not rest on the preserve declarations alone: a
    cached analysis is returned only when the function value it was
    computed for (or rebased onto) is {e physically} the value being
    queried.  A pass that rewrites a function mid-run therefore always
    gets fresh analyses for the rewritten value, and a wrong preserve
    set can only surface through the rebase step itself — which is
    exactly the contract documented on {!Cfg.rebase}.

    Every query reports one {!Support.Tracing} event with stage
    ["analysis"] and pass ["<kind>:hit"] or ["<kind>:compute"], so
    traces show analysis reuse directly. *)

module Sym = Support.Interner

type kind = Findex | Cfg | Dominance | Loop_info | Effects

let kind_name = function
  | Findex -> "findex"
  | Cfg -> "cfg"
  | Dominance -> "dominance"
  | Loop_info -> "loop_info"
  | Effects -> "effects"

type entry = {
  mutable e_func : Lmodule.func;  (** the value the caches are valid for *)
  mutable e_findex : Findex.t option;
  mutable e_cfg : Cfg.t option;
  mutable e_dom : Dominance.t option;
  mutable e_li : Loop_info.t option;
  mutable e_vok : bool;
      (** the verifier accepted exactly this function value *)
}

type t = {
  cache : entry Sym.Tbl.t;
  mutable m_effects : (Lmodule.t * Effects.t) option;
      (** module-level effect summary, valid for exactly that module value *)
  seeds : (Lmodule.func * Findex.t) Sym.Tbl.t;
      (** per function name: index a pass prebuilt for its output
          function; installed by {!keep}, or served directly if
          queried before that *)
  mutable m_sigs : (string * Ltype.t list * Ltype.t) list option;
      (** callable-signature environment the verifier last ran under
          (functions and declarations, in module order) *)
  trace : Support.Tracing.hook;
}

let create ?(trace = Support.Tracing.null) () : t =
  {
    cache = Sym.Tbl.create 16;
    m_effects = None;
    seeds = Sym.Tbl.create 16;
    m_sigs = None;
    trace;
  }

let fresh_entry f =
  {
    e_func = f;
    e_findex = None;
    e_cfg = None;
    e_dom = None;
    e_li = None;
    e_vok = false;
  }

(** Entry valid for exactly this function value; reset on mismatch. *)
let entry_for (am : t) (f : Lmodule.func) : entry =
  let key = Sym.intern f.Lmodule.fname in
  match Sym.Tbl.find_opt am.cache key with
  | Some e ->
      if e.e_func != f then begin
        e.e_func <- f;
        e.e_findex <- None;
        e.e_cfg <- None;
        e.e_dom <- None;
        e.e_li <- None;
        e.e_vok <- false
      end;
      e
  | None ->
      let e = fresh_entry f in
      Sym.Tbl.replace am.cache key e;
      e

let report (am : t) (k : kind) ~(hit : bool) ~seconds (f : Lmodule.func) =
  let n =
    List.fold_left
      (fun acc (b : Lmodule.block) -> acc + List.length b.insts)
      0 f.Lmodule.blocks
  in
  am.trace
    (Support.Tracing.event ~stage:"analysis"
       ~pass:(kind_name k ^ if hit then ":hit" else ":compute")
       ~seconds ~before:n ~after:n)

let query (am : t) (k : kind) (f : Lmodule.func) ~(get : entry -> 'a option)
    ~(set : entry -> 'a -> unit) ~(compute : unit -> 'a) : 'a =
  let e = entry_for am f in
  (* the clock reads and event allocation are measurable on hot paths,
     so skip them entirely under the null hook *)
  let traced = am.trace != Support.Tracing.null in
  match get e with
  | Some v ->
      if traced then report am k ~hit:true ~seconds:0.0 f;
      v
  | None ->
      if traced then begin
        let t0 = Sys.time () in
        let v = compute () in
        set e v;
        report am k ~hit:false ~seconds:(Sys.time () -. t0) f;
        v
      end
      else begin
        let v = compute () in
        set e v;
        v
      end

let cfg_q (am : t) (f : Lmodule.func) : Cfg.t =
  query am Cfg f
    ~get:(fun e -> e.e_cfg)
    ~set:(fun e v -> e.e_cfg <- Some v)
    ~compute:(fun () -> Cfg.build f)

let dominance_q (am : t) (f : Lmodule.func) : Dominance.t =
  query am Dominance f
    ~get:(fun e -> e.e_dom)
    ~set:(fun e v -> e.e_dom <- Some v)
    ~compute:(fun () -> Dominance.compute (cfg_q am f))

let findex_q (am : t) (f : Lmodule.func) : Findex.t =
  query am Findex f
    ~get:(fun e -> e.e_findex)
    ~set:(fun e v -> e.e_findex <- Some v)
    ~compute:(fun () ->
      match Sym.Tbl.find_opt am.seeds (Sym.intern f.Lmodule.fname) with
      | Some (sf, idx) when sf == f -> idx
      | _ -> Findex.build f)

let loop_info_q (am : t) (f : Lmodule.func) : Loop_info.t =
  query am Loop_info f
    ~get:(fun e -> e.e_li)
    ~set:(fun e v -> e.e_li <- Some v)
    ~compute:(fun () -> Loop_info.compute (cfg_q am f))

let module_report (am : t) ~(hit : bool) ~seconds (m : Lmodule.t) =
  let n = Lmodule.instr_count m in
  am.trace
    (Support.Tracing.event ~stage:"analysis"
       ~pass:(kind_name Effects ^ if hit then ":hit" else ":compute")
       ~seconds ~before:n ~after:n)

(** Module-level effect summary, cached for exactly this module value
    (same physical-equality soundness guard as the per-function
    entries). *)
let effects_q (am : t) (m : Lmodule.t) : Effects.t =
  match am.m_effects with
  | Some (m0, e) when m0 == m ->
      if am.trace != Support.Tracing.null then
        module_report am ~hit:true ~seconds:0.0 m;
      e
  | _ ->
      let t0 = Sys.time () in
      let e = Effects.summarize m in
      am.m_effects <- Some (m, e);
      if am.trace != Support.Tracing.null then
        module_report am ~hit:false ~seconds:(Sys.time () -. t0) m;
      e

(** [?am]-threading front doors: with a manager, cached; without, a
    plain build.  Pass implementations call these so they work both
    standalone and under {!Pass.run_pipeline}. *)

let findex ?am f = match am with Some am -> findex_q am f | None -> Findex.build f
let cfg ?am f = match am with Some am -> cfg_q am f | None -> Cfg.build f

let dominance ?am f =
  match am with
  | Some am -> dominance_q am f
  | None -> Dominance.compute (Cfg.build f)

let loop_info ?am f =
  match am with
  | Some am -> loop_info_q am f
  | None -> Loop_info.compute (Cfg.build f)

let effects ?am m =
  match am with Some am -> effects_q am m | None -> Effects.summarize m

(** After a pass produced [m], keep only the analyses it [preserves]
    (rebased onto the new function values) plus everything cached for
    functions the pass left physically untouched; drop the rest and
    any entries for functions that no longer exist. *)
(** Hand the manager an index a pass already built for its {e output}
    function (DCE indexes the compacted arena it just wrote).  The
    next {!keep} installs it for the matching function value, so the
    post-pass verifier reads the same flat storage the pass produced
    instead of re-indexing the materialised lists. *)
let seed_findex (am : t) (f : Lmodule.func) (idx : Findex.t) : unit =
  Sym.Tbl.replace am.seeds (Sym.intern f.Lmodule.fname) (f, idx)

let keep (am : t) ~(preserves : kind list) (m : Lmodule.t) : unit =
  (* Effect summaries over-approximate, and every effect a pass can
     leave behind was already in the pre-pass summary (passes only
     remove, merge or move accesses; inline substitutes bodies whose
     effects the transitively-closed caller summary already contains).
     Preserving therefore re-points the cached summary at the new
     module value; dropping recomputes on next query. *)
  (match am.m_effects with
  | Some (_, e) when List.mem Effects preserves -> am.m_effects <- Some (m, e)
  | Some _ -> am.m_effects <- None
  | None -> ());
  let live = Sym.Tbl.create 16 in
  List.iter
    (fun (f : Lmodule.func) ->
      let key = Sym.intern f.Lmodule.fname in
      Sym.Tbl.replace live key ();
      (match Sym.Tbl.find_opt am.cache key with
      | None -> ()
      | Some e when e.e_func == f -> ()  (* untouched: everything valid *)
      | Some e ->
          let keep_k k = List.mem k preserves in
          e.e_findex <-
            (if keep_k Findex then Option.map (fun x -> Findex.rebase x f) e.e_findex
             else None);
          e.e_cfg <-
            (if keep_k Cfg then Option.map (fun x -> Cfg.rebase x f) e.e_cfg
             else None);
          e.e_dom <-
            (if keep_k Dominance then
               Option.map (fun x -> Dominance.rebase x f) e.e_dom
             else None);
          e.e_li <-
            (if keep_k Loop_info then
               Option.map (fun x -> Loop_info.rebase x f) e.e_li
             else None);
          e.e_vok <- false;
          e.e_func <- f);
      match Sym.Tbl.find_opt am.seeds key with
      | Some (sf, idx) when sf == f ->
          let e = entry_for am f in
          e.e_findex <- Some idx
      | _ -> ())
    m.Lmodule.funcs;
  Sym.Tbl.reset am.seeds;
  Sym.Tbl.iter
    (fun key _ -> if not (Sym.Tbl.mem live key) then Sym.Tbl.remove am.cache key)
    (Sym.Tbl.copy am.cache)

(* ------------------------------------------------------------------ *)
(* Incremental verification support                                    *)

let verified (am : t) (f : Lmodule.func) : bool = (entry_for am f).e_vok
let mark_verified (am : t) (f : Lmodule.func) : unit =
  (entry_for am f).e_vok <- true

let note_signatures (am : t) (m : Lmodule.t) : bool =
  let sigs =
    List.map
      (fun (f : Lmodule.func) ->
        ( f.Lmodule.fname,
          List.map (fun (p : Lmodule.param) -> p.Lmodule.pty) f.Lmodule.params,
          f.Lmodule.ret_ty ))
      m.Lmodule.funcs
    @ List.map
        (fun (d : Lmodule.decl) ->
          (d.Lmodule.dname, d.Lmodule.dargs, d.Lmodule.dret))
        m.Lmodule.decls
  in
  let changed =
    match am.m_sigs with Some prev -> prev <> sigs | None -> true
  in
  am.m_sigs <- Some sigs;
  changed
