(** Static parallel-safety checker: may two functions of a module be
    processed (or executed) concurrently without racing on shared
    state?

    Built on {!Effects} footprints: two functions conflict when both
    touch the same module global and at least one writes it, and a
    function with an {e open} footprint (unknown effects) conflicts
    with every other function because nothing can be proven about what
    it touches.  Pointer parameters never conflict across functions —
    each function owns its interface ports under the HLS contract.
    Read-only overlap is allowed.

    The verdict gates {!Pass.run_pipeline_parallel}: [Safe] lets the
    function-local pass tail fan out across domains; [Unsafe] falls
    back to the sequential pipeline and reports why. *)

type conflict =
  | Global_write_write of string * string * string
      (** [fa, fb, global] — both functions write the global *)
  | Global_read_write of string * string * string
      (** [fa, fb, global] — one writes what the other reads *)
  | Unknown_effects of string * string list
      (** [f, reasons] — the function's footprint is open *)

type verdict = Safe | Unsafe of conflict list

val conflict_to_string : conflict -> string
val verdict_to_string : verdict -> string

(** Machine-readable verdict:
    [{"verdict": "safe"}] or
    [{"verdict": "unsafe", "conflicts": [{"kind": ..., ...}]}]. *)
val to_json : verdict -> string

(** Check the module.  [?effects] reuses an existing summary (e.g. the
    {!Analysis}-cached one); otherwise one is computed.  Conflicts are
    reported exhaustively, deterministically ordered.  A single-
    function module is always [Safe] — there is no pair to race. *)
val check : ?effects:Effects.t -> Lmodule.t -> verdict
