(** LLVM IR interpreter with a byte-addressed memory model.

    This is the functional oracle for the adaptor: the IR before and
    after every legalization pass must compute the same outputs, and
    both HLS flows must match the mhir reference interpreter
    ("C/RTL co-simulation" analogue).

    Model notes:
    - addresses are plain ints from a bump allocator; each scalar slot
      lives at its natural offset (so GEP arithmetic agrees with
      {!Ltype.sizeof});
    - [float]/[double] are both OCaml floats (the mhir interpreter makes
      the same substitution, keeping the oracles comparable);
    - integers normalize to their width after every operation; unsigned
      arithmetic and the deterministic out-of-range shift behaviour are
      defined once in {!Support.Int_sem};
    - intrinsics: [llvm.smax/smin/umax/umin/abs/fmuladd/fabs/sqrt] are
      evaluated; [llvm.lifetime.*], [llvm.assume] and the Vitis-style
      [_ssdm_op_Spec*] markers are no-ops. *)

open Linstr
module Sym = Support.Interner

let fail = Support.Err.fail ~pass:"llvmir.interp"

type rv =
  | RInt of int
  | RFloat of float
  | RPtr of int
  | RAgg of rv array
  | RUndef

type state = {
  mem : (int, rv) Hashtbl.t;
  mutable brk : int;
  modul : Lmodule.t;
  globals : (Sym.t, int) Hashtbl.t;
  mutable fuel : int;  (** instruction budget; guards infinite loops *)
}

let norm_int ty v =
  match ty with
  | Ltype.I1 -> v land 1
  | Ltype.I8 ->
      let m = v land 0xFF in
      if m land 0x80 <> 0 then m - 0x100 else m
  | Ltype.I16 ->
      let m = v land 0xFFFF in
      if m land 0x8000 <> 0 then m - 0x10000 else m
  | Ltype.I32 ->
      let m = v land 0xFFFFFFFF in
      if m land 0x80000000 <> 0 then m - (1 lsl 32) else m
  | _ -> v

(** Zero value of a type (used for alloca/global initialization). *)
let rec zero_of = function
  | t when Ltype.is_int t -> RInt 0
  | t when Ltype.is_float t -> RFloat 0.0
  | Ltype.Ptr _ -> RPtr 0
  | Ltype.Array (n, t) -> RAgg (Array.init n (fun _ -> zero_of t))
  | Ltype.Struct fields -> RAgg (Array.of_list (List.map zero_of fields))
  | t -> fail "zero_of: unsupported type %s" (Ltype.to_string t)

(** Write an aggregate/scalar value into memory at [addr], slot by
    scalar slot at natural offsets. *)
let rec mem_write st addr ty (v : rv) =
  match (ty, v) with
  | Ltype.Array (n, elt), RAgg vs ->
      let sz = Ltype.sizeof elt in
      for i = 0 to n - 1 do
        mem_write st (addr + (i * sz)) elt vs.(i)
      done
  | Ltype.Struct fields, RAgg vs ->
      List.iteri
        (fun i f -> mem_write st (addr + Ltype.struct_offset fields i) f vs.(i))
        fields
  | _, _ -> Hashtbl.replace st.mem addr v

let rec mem_read st addr ty : rv =
  match ty with
  | Ltype.Array (n, elt) ->
      let sz = Ltype.sizeof elt in
      RAgg (Array.init n (fun i -> mem_read st (addr + (i * sz)) elt))
  | Ltype.Struct fields ->
      RAgg
        (Array.of_list
           (List.mapi
              (fun i f -> mem_read st (addr + Ltype.struct_offset fields i) f)
              fields))
  | _ -> (
      match Hashtbl.find_opt st.mem addr with
      | Some v -> v
      | None -> fail "load from uninitialized address %d" addr)

let alloc st ty =
  let align = max 8 (Ltype.alignment ty) in
  let addr = (st.brk + align - 1) / align * align in
  st.brk <- addr + max 1 (Ltype.sizeof ty);
  mem_write st addr ty (zero_of ty);
  addr

let create (m : Lmodule.t) : state =
  let st =
    {
      mem = Hashtbl.create 4096;
      brk = 0x1000;
      modul = m;
      globals = Hashtbl.create 8;
      fuel = 500_000_000;
    }
  in
  List.iter
    (fun (g : Lmodule.global) ->
      let addr = alloc st g.gty in
      Hashtbl.replace st.globals (Sym.intern g.gname) addr)
    m.globals;
  st

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

type frame = { env : (Sym.t, rv) Hashtbl.t }

let const_rv = function
  | Lvalue.CInt (v, ty) -> RInt (norm_int ty v)
  | Lvalue.CFloat (v, _) -> RFloat v
  | Lvalue.CNull _ -> RPtr 0
  | Lvalue.CUndef _ -> RUndef
  | Lvalue.CZero ty -> zero_of ty

let eval st frame (v : Lvalue.t) : rv =
  match v with
  | Lvalue.Reg (n, _) -> (
      match Hashtbl.find_opt frame.env n with
      | Some rv -> rv
      | None -> fail "register %%%s unbound" (Sym.name n))
  | Lvalue.Global (n, _) -> (
      match Hashtbl.find_opt st.globals n with
      | Some addr -> RPtr addr
      | None -> fail "global @%s unbound" (Sym.name n))
  | Lvalue.Const c -> const_rv c

let as_i = function
  | RInt v -> v
  | RUndef -> 0
  | _ -> fail "expected integer runtime value"

let as_f = function
  | RFloat v -> v
  | RUndef -> 0.0
  | _ -> fail "expected float runtime value"

let as_p = function
  | RPtr v -> v
  | RUndef -> 0
  | _ -> fail "expected pointer runtime value"

(* Division, remainder, shifts and unsigned reinterpretation all follow
   {!Support.Int_sem} — the semantics shared with the mhir interpreter
   and both constant folders.  Shift amounts >= width (or negative)
   yield 0 for [shl]/[lshr] and the sign fill for [ashr]. *)
let ibin_eval op ty a b =
  let w = Ltype.int_width ty in
  let module S = Support.Int_sem in
  let v =
    match op with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | SDiv -> if b = 0 then fail "sdiv by zero" else a / b
    | UDiv -> if b = 0 then fail "udiv by zero" else S.udiv ~width:w a b
    | SRem -> if b = 0 then fail "srem by zero" else a mod b
    | URem -> if b = 0 then fail "urem by zero" else S.urem ~width:w a b
    | Shl -> S.shl ~width:w a b
    | LShr -> S.lshr ~width:w a b
    | AShr -> S.ashr ~width:w a b
    | And -> a land b
    | Or -> a lor b
    | Xor -> a lxor b
  in
  norm_int ty v

let fbin_eval op a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b
  | FRem -> Float.rem a b

let icmp_eval p a b =
  let module S = Support.Int_sem in
  match p with
  | IEq -> a = b
  | INe -> a <> b
  | ISlt -> a < b
  | ISle -> a <= b
  | ISgt -> a > b
  | ISge -> a >= b
  | IUlt -> S.ult a b
  | IUle -> S.ule a b
  | IUgt -> S.ugt a b
  | IUge -> S.uge a b

let fcmp_eval p a b =
  match p with
  | FOeq -> a = b
  | FOne -> a <> b && not (Float.is_nan a || Float.is_nan b)
  | FOlt -> a < b
  | FOle -> a <= b
  | FOgt -> a > b
  | FOge -> a >= b
  | FOrd -> not (Float.is_nan a || Float.is_nan b)
  | FUno -> Float.is_nan a || Float.is_nan b

let intrinsic_eval st name (args : rv list) : rv option =
  let starts_with p = String.length name >= String.length p
                      && String.sub name 0 (String.length p) = p in
  ignore st;
  match args with
  | [ a; b ] when starts_with "llvm.smax." -> Some (RInt (max (as_i a) (as_i b)))
  | [ a; b ] when starts_with "llvm.smin." -> Some (RInt (min (as_i a) (as_i b)))
  | [ a; b ] when starts_with "llvm.umax." ->
      Some (RInt (Support.Int_sem.umax (as_i a) (as_i b)))
  | [ a; b ] when starts_with "llvm.umin." ->
      Some (RInt (Support.Int_sem.umin (as_i a) (as_i b)))
  | [ a; _poison ] when starts_with "llvm.abs." -> Some (RInt (abs (as_i a)))
  | [ a; b; c ] when starts_with "llvm.fmuladd." || starts_with "llvm.fma." ->
      Some (RFloat ((as_f a *. as_f b) +. as_f c))
  | [ a ] when starts_with "llvm.fabs." -> Some (RFloat (Float.abs (as_f a)))
  | [ a ] when starts_with "llvm.sqrt." -> Some (RFloat (Float.sqrt (as_f a)))
  | _ when starts_with "llvm.lifetime." -> Some RUndef
  | _ when starts_with "llvm.assume" -> Some RUndef
  | _ when starts_with "_ssdm_op_" -> Some RUndef
  | _ -> None

exception Returned of rv option

let rec run_func st (f : Lmodule.func) (args : rv list) : rv option =
  if List.length args <> List.length f.params then
    fail "@%s: arity mismatch" f.fname;
  let frame = { env = Hashtbl.create 64 } in
  List.iter2
    (fun (p : Lmodule.param) a ->
      Hashtbl.replace frame.env (Sym.intern p.pname) a)
    f.params args;
  let cfg_blocks = Hashtbl.create 16 in
  List.iter
    (fun (b : Lmodule.block) -> Hashtbl.replace cfg_blocks b.label b)
    f.blocks;
  let rec exec_block prev_label (b : Lmodule.block) : rv option =
    (* phis evaluate simultaneously from the incoming edge *)
    let phis, rest =
      let rec split acc = function
        | ({ op = Phi _; _ } as i) :: tl -> split (i :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      split [] b.insts
    in
    let phi_vals =
      List.map
        (fun (i : Linstr.t) ->
          match i.op with
          | Phi incoming -> (
              match prev_label with
              | None -> fail "phi executed with no predecessor"
              | Some pl -> (
                  match List.assoc_opt pl (List.map (fun (v, l) -> (l, v)) incoming) with
                  | Some v -> (i.result, eval st frame v)
                  | None -> fail "phi has no incoming for %%%s" (Sym.name pl)))
          | _ -> assert false)
        phis
    in
    List.iter (fun (r, v) -> Hashtbl.replace frame.env r v) phi_vals;
    exec_insts b.label rest
  and exec_insts label = function
    | [] -> fail "block %%%s fell through" (Sym.name label)
    | (i : Linstr.t) :: rest -> (
        st.fuel <- st.fuel - 1;
        if st.fuel <= 0 then fail "instruction budget exhausted (infinite loop?)";
        let bind rv =
          if not (Sym.is_empty i.result) then
            Hashtbl.replace frame.env i.result rv
        in
        match i.op with
        | IBin (op, a, b) ->
            bind
              (RInt
                 (ibin_eval op
                    (Lvalue.type_of a)
                    (as_i (eval st frame a))
                    (as_i (eval st frame b))));
            exec_insts label rest
        | FBin (op, a, b) ->
            bind (RFloat (fbin_eval op (as_f (eval st frame a)) (as_f (eval st frame b))));
            exec_insts label rest
        | Icmp (p, a, b) ->
            let x = eval st frame a and y = eval st frame b in
            let xi = match x with RPtr v -> v | v -> as_i v in
            let yi = match y with RPtr v -> v | v -> as_i v in
            bind (RInt (if icmp_eval p xi yi then 1 else 0));
            exec_insts label rest
        | Fcmp (p, a, b) ->
            bind
              (RInt
                 (if fcmp_eval p (as_f (eval st frame a)) (as_f (eval st frame b))
                  then 1
                  else 0));
            exec_insts label rest
        | Alloca (ty, count) ->
            let addr =
              if count = 1 then alloc st ty
              else begin
                let base = alloc st ty in
                for _ = 2 to count do ignore (alloc st ty) done;
                base
              end
            in
            bind (RPtr addr);
            exec_insts label rest
        | Load (ty, p) ->
            bind (mem_read st (as_p (eval st frame p)) ty);
            exec_insts label rest
        | Store (v, p) ->
            let ty = Lvalue.type_of v in
            let ty =
              match ty with
              | Ltype.Ptr _ -> ty
              | _ -> ty
            in
            mem_write st (as_p (eval st frame p)) ty (eval st frame v);
            exec_insts label rest
        | Gep { src_ty; base; idxs; _ } ->
            let addr = as_p (eval st frame base) in
            let rec walk addr ty = function
              | [] -> addr
              | idx :: tl -> (
                  let iv = as_i (eval st frame idx) in
                  match ty with
                  | Ltype.Array (_, elt) ->
                      walk (addr + (iv * Ltype.sizeof elt)) elt tl
                  | Ltype.Struct fields ->
                      walk
                        (addr + Ltype.struct_offset fields iv)
                        (List.nth fields iv) tl
                  | t -> fail "gep walks into non-aggregate %s" (Ltype.to_string t))
            in
            let addr =
              match idxs with
              | [] -> addr
              | first :: tl ->
                  let fv = as_i (eval st frame first) in
                  walk (addr + (fv * Ltype.sizeof src_ty)) src_ty tl
            in
            bind (RPtr addr);
            exec_insts label rest
        | Cast (c, v, ty) ->
            let rv = eval st frame v in
            let out =
              match c with
              | Trunc | Zext | Sext -> RInt (norm_int ty (as_i rv))
              | Fptrunc | Fpext -> RFloat (as_f rv)
              | Fptosi -> RInt (norm_int ty (int_of_float (as_f rv)))
              | Sitofp -> RFloat (float_of_int (as_i rv))
              | Ptrtoint -> RInt (as_p rv)
              | Inttoptr -> RPtr (as_i rv)
              | Bitcast -> rv
            in
            bind out;
            exec_insts label rest
        | Select (c, a, b) ->
            bind
              (if as_i (eval st frame c) <> 0 then eval st frame a
               else eval st frame b);
            exec_insts label rest
        | Phi _ -> fail "phi after non-phi instruction"
        | Call { callee; args; _ } -> (
            let argv = List.map (eval st frame) args in
            match intrinsic_eval st callee argv with
            | Some rv ->
                bind rv;
                exec_insts label rest
            | None -> (
                match Lmodule.find_func st.modul callee with
                | Some g ->
                    (match run_func st g argv with
                    | Some rv -> bind rv
                    | None -> ());
                    exec_insts label rest
                | None -> fail "call to unknown function @%s" callee))
        | ExtractValue (agg, path) ->
            let rec walk rv = function
              | [] -> rv
              | i :: tl -> (
                  match rv with
                  | RAgg a -> walk a.(i) tl
                  | RUndef -> RUndef
                  | _ -> fail "extractvalue from non-aggregate")
            in
            bind (walk (eval st frame agg) path);
            exec_insts label rest
        | InsertValue (agg, v, path) ->
            let velt = eval st frame v in
            let rec walk rv path =
              match (rv, path) with
              | _, [] -> velt
              | RAgg a, i :: tl ->
                  let a' = Array.copy a in
                  a'.(i) <- walk a.(i) tl;
                  RAgg a'
              | RUndef, i :: tl ->
                  (* materialize an aggregate big enough for the path *)
                  let a' = Array.make (i + 1) RUndef in
                  a'.(i) <- walk RUndef tl;
                  RAgg a'
              | _ -> fail "insertvalue into non-aggregate"
            in
            (* undef aggregates need the real width: rebuild from type *)
            let base =
              match eval st frame agg with
              | RUndef -> (
                  match Lvalue.type_of agg with
                  | (Ltype.Struct _ | Ltype.Array _) as t -> zero_of t
                  | _ -> RUndef)
              | rv -> rv
            in
            bind (walk base path);
            exec_insts label rest
        | Freeze v ->
            bind (eval st frame v);
            exec_insts label rest
        | Ret (Some v) -> raise (Returned (Some (eval st frame v)))
        | Ret None -> raise (Returned None)
        | Br l -> exec_block (Some label) (Hashtbl.find cfg_blocks l)
        | CondBr (c, t, e) ->
            let target = if as_i (eval st frame c) <> 0 then t else e in
            exec_block (Some label) (Hashtbl.find cfg_blocks target)
        | Switch (v, d, cases) ->
            let x = as_i (eval st frame v) in
            let target =
              match List.assoc_opt x cases with Some l -> l | None -> d
            in
            exec_block (Some label) (Hashtbl.find cfg_blocks target)
        | Unreachable -> fail "executed unreachable")
  in
  match f.blocks with
  | entry :: _ -> ( try exec_block None entry with Returned rv -> rv)
  | [] -> fail "@%s has no blocks" f.fname

let run st fname args = run_func st (Lmodule.find_func_exn st.modul fname) args

(* ------------------------------------------------------------------ *)
(* Host-side buffer helpers                                            *)
(* ------------------------------------------------------------------ *)

(** Allocate a flat float array of [n] elements; returns its address. *)
let alloc_floats st ?(ty = Ltype.Float) n =
  alloc st (Ltype.Array (n, ty))

let write_floats st addr (vals : float array) =
  Array.iteri
    (fun i v -> Hashtbl.replace st.mem (addr + (i * 4)) (RFloat v))
    vals

let read_floats st addr n =
  Array.init n (fun i ->
      match Hashtbl.find_opt st.mem (addr + (i * 4)) with
      | Some (RFloat v) -> v
      | Some RUndef | None -> 0.0
      | Some _ -> fail "read_floats: non-float slot")

let alloc_ints st ?(ty = Ltype.I32) n = alloc st (Ltype.Array (n, ty))

let write_ints st addr ?(size = 4) (vals : int array) =
  Array.iteri
    (fun i v -> Hashtbl.replace st.mem (addr + (i * size)) (RInt v))
    vals

let read_ints st addr ?(size = 4) n =
  Array.init n (fun i ->
      match Hashtbl.find_opt st.mem (addr + (i * size)) with
      | Some (RInt v) -> v
      | Some RUndef | None -> 0
      | Some _ -> fail "read_ints: non-int slot")
