(** Loop-invariant code motion.

    Pure instructions inside a loop whose operands are all defined
    outside the loop (or are constants) hoist to the loop's
    preheader — the unique out-of-loop predecessor of the header.
    Loops without a unique preheader are skipped (the structured
    lowering always produces one). *)

open Linstr
open Lmodule
module Sym = Support.Interner

let run_func ?am (f : func) : func * bool =
  let cfg = Analysis.cfg ?am f in
  let li = Analysis.loop_info ?am f in
  if Array.length li.Loop_info.loops = 0 then (f, false)
  else begin
    let changed = ref false in
    (* process innermost-first so hoisted code can cascade outward *)
    let order =
      List.sort
        (fun a b ->
          compare li.Loop_info.loops.(b).Loop_info.depth
            li.Loop_info.loops.(a).Loop_info.depth)
        (List.init (Array.length li.Loop_info.loops) (fun i -> i))
    in
    let blocks = Array.of_list f.blocks in
    let label_index = Sym.Tbl.create 16 in
    Array.iteri
      (fun i (b : block) -> Sym.Tbl.replace label_index b.label i)
      blocks;
    List.iter
      (fun j ->
        let l = li.Loop_info.loops.(j) in
        let body_labels = List.map (Cfg.label cfg) l.Loop_info.body in
        (* defs inside the loop *)
        let inside_defs = Sym.Tbl.create 32 in
        List.iter
          (fun lbl ->
            let b = blocks.(Sym.Tbl.find label_index lbl) in
            List.iter
              (fun (i : Linstr.t) ->
                if not (Sym.is_empty i.result) then
                  Sym.Tbl.replace inside_defs i.result ())
              b.insts)
          body_labels;
        (* unique preheader *)
        let header_preds = cfg.Cfg.preds.(l.Loop_info.header) in
        let outside_preds =
          List.filter (fun p -> not (List.mem p l.Loop_info.body)) header_preds
        in
        match outside_preds with
        | [ ph ] ->
            let ph_label = Cfg.label cfg ph in
            let hoisted = ref [] in
            let invariant (i : Linstr.t) =
              Linstr.is_pure i
              && (match i.op with Phi _ -> false | _ -> true)
              && List.for_all
                   (fun v ->
                     match v with
                     | Lvalue.Reg (n, _) -> not (Sym.Tbl.mem inside_defs n)
                     | _ -> true)
                   (operands i)
            in
            (* iterate: hoisting one instruction may unlock its users *)
            let rec sweep () =
              let moved = ref false in
              List.iter
                (fun lbl ->
                  let bi = Sym.Tbl.find label_index lbl in
                  let b = blocks.(bi) in
                  let keep, move =
                    List.partition
                      (fun (i : Linstr.t) ->
                        if invariant i && not (Sym.is_empty i.result) then begin
                          Sym.Tbl.remove inside_defs i.result;
                          false
                        end
                        else true)
                      b.insts
                  in
                  if move <> [] then begin
                    moved := true;
                    changed := true;
                    hoisted := !hoisted @ move;
                    blocks.(bi) <- { b with insts = keep }
                  end)
                body_labels;
              if !moved then sweep ()
            in
            sweep ();
            if !hoisted <> [] then begin
              let phi = Sym.Tbl.find label_index ph_label in
              let phb = blocks.(phi) in
              let insts =
                match List.rev phb.insts with
                | term :: restrev -> List.rev restrev @ !hoisted @ [ term ]
                | [] -> !hoisted
              in
              blocks.(phi) <- { phb with insts }
            end
        | _ -> ())
      order;
    if !changed then ({ f with blocks = Array.to_list blocks }, true)
    else (f, false)
  end

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
