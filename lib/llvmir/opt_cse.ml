(** Common subexpression elimination, dominance-based.

    Pure instructions with identical opcodes and operands are unified:
    the walk descends the dominator tree carrying a table of available
    expressions, so a redundant instruction is always dominated by the
    expression it reuses.

    Expressions key as packed int arrays over the {!Iarena} encoding —
    the opcode word, the per-opcode scalar payload (interned source
    type, aggregate path) and one identity key per operand
    ({!Iarena.opnd_key}: symbol for registers, interned constant-pool
    index for constants) — where the old walk built and hashed a
    string per candidate.  Within a function SSA gives every register
    one type, so the symbol alone carries what the string key spelt
    out as [ty:name].  Redundant rows are killed in place; surviving
    users get their operand slots rewritten through the path-compressed
    substitution, and the pass seeds the analysis cache with an index
    of the compacted arena it wrote. *)

open Lmodule
module Sym = Support.Interner

let run_func ?am (f : func) : func * bool =
  let dom = Analysis.dominance ?am f in
  let idx = Analysis.findex ?am f in
  let a = Findex.arena idx in
  let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 32 in
  let changed = ref false in
  (* [key_of k] for a keyable row: opcode word, scalar payload, then
     one packed key per operand with the current substitution already
     applied — matching the old walk, which resolved operands before
     keying.  Values in [subst] are kept (never-substituted) registers
     or constants, so one probe is full resolution here. *)
  let key_of k =
    let tg = Iarena.tag a k in
    let o = Iarena.op_off a k and l = Iarena.op_len a k in
    let extra =
      if tg = Iarena.tag_gep || tg = Iarena.tag_cast then 1
      else if tg = Iarena.tag_extractvalue || tg = Iarena.tag_insertvalue
      then Iarena.aux1 a k
      else 0
    in
    let key = Array.make (1 + extra + l) (Iarena.opword a k) in
    if extra = 1 then key.(1) <- Iarena.aux0 a k
    else
      for i = 0 to extra - 1 do
        key.(1 + i) <- Iarena.xt a (Iarena.aux0 a k + i)
      done;
    for i = 0 to l - 1 do
      key.(1 + extra + i) <-
        (match Iarena.opnd a (o + i) with
        | Lvalue.Reg (r, _) as v -> (
            match Sym.Tbl.find_opt subst r with
            | Some v' -> Iarena.key_of_value a v'
            | None -> Iarena.key_of_value a v)
        | _ -> Iarena.opnd_key a (o + i))
    done;
    key
  in
  (* One shared table scoped by an undo list: entering a block pushes
     its insertions, leaving pops them ([Hashtbl.add] stacks a
     shadowing binding, [remove] restores the shadowed one).  An
     instruction probes before inserting, so a block never inserts the
     same key twice — semantics match the old copy-per-block walk at
     O(insertions) instead of O(blocks x table size). *)
  let avail : (int array, Lvalue.t) Hashtbl.t = Hashtbl.create 32 in
  let rec walk bi =
    let added = ref [] in
    for k = Iarena.block_start a bi to Iarena.block_stop a bi - 1 do
      let tg = Iarena.tag a k in
      if
        Iarena.pure_tag tg
        && tg <> Iarena.tag_phi (* phi equality depends on control flow *)
        && not (Sym.is_empty (Iarena.result a k))
      then begin
        let key = key_of k in
        match Hashtbl.find_opt avail key with
        | Some v ->
            changed := true;
            Iarena.kill a k;
            Sym.Tbl.replace subst (Iarena.result a k) v
        | None ->
            Hashtbl.add avail key
              (Lvalue.Reg (Iarena.result a k, Iarena.result_ty a k));
            added := key :: !added
      end
    done;
    List.iter walk dom.Dominance.children.(bi);
    List.iter (fun key -> Hashtbl.remove avail key) !added
  in
  if Iarena.n_blocks a > 0 then walk 0;
  if not !changed then (f, false)
  else begin
    (* Rewrite the operand slots of surviving users through the
       path-compressed substitution, then materialise — the arena is
       the output, so the index of its compacted copy can seed the
       analysis cache for the next pass and the verifier. *)
    let resolved = Findex.compress_chains subst in
    Sym.Tbl.iter
      (fun n _ ->
        Findex.iter_users idx n (fun k ->
            if not (Iarena.is_dead a k) then begin
              let o = Iarena.op_off a k in
              for s = o to o + Iarena.op_len a k - 1 do
                match Iarena.opnd a s with
                | Lvalue.Reg (r, _) -> (
                    match Sym.Tbl.find_opt resolved r with
                    | Some v' -> Iarena.set_opnd a k s v'
                    | None -> ())
                | _ -> ()
              done
            end))
      subst;
    let f' = { f with blocks = Iarena.to_blocks a } in
    (match am with
    | Some am ->
        Analysis.seed_findex am f' (Findex.of_arena f' (Iarena.compact a))
    | None -> ());
    (f', true)
  end

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
