(** Common subexpression elimination, dominance-based.

    Pure instructions with identical opcodes and operands are unified:
    the walk descends the dominator tree carrying a table of available
    expressions, so a redundant instruction is always dominated by the
    expression it reuses. *)

open Linstr
open Lmodule
module Sym = Support.Interner

(** Structural key for a pure instruction (None when not CSE-able). *)
let key_of (i : Linstr.t) : string option =
  if not (Linstr.is_pure i) then None
  else
    match i.op with
    | Phi _ -> None  (* phi equality depends on control flow *)
    | _ ->
        let opstr =
          match i.op with
          | IBin (op, _, _) -> "ibin:" ^ string_of_ibinop op
          | FBin (op, _, _) -> "fbin:" ^ string_of_fbinop op
          | Icmp (p, _, _) -> "icmp:" ^ string_of_icmp p
          | Fcmp (p, _, _) -> "fcmp:" ^ string_of_fcmp p
          | Gep { inbounds; src_ty; _ } ->
              Printf.sprintf "gep:%b:%s" inbounds (Ltype.to_string src_ty)
          | Cast (c, _, ty) ->
              Printf.sprintf "cast:%s:%s" (string_of_cast c)
                (Ltype.to_string ty)
          | Select _ -> "select"
          | ExtractValue (_, path) ->
              "extract:" ^ String.concat "." (List.map string_of_int path)
          | InsertValue (_, _, path) ->
              "insert:" ^ String.concat "." (List.map string_of_int path)
          | Freeze _ -> "freeze"
          | _ -> "other"
        in
        let ops =
          String.concat ","
            (List.map
               (fun v ->
                 Ltype.to_string (Lvalue.type_of v) ^ ":" ^ Lvalue.to_string v)
               (operands i))
        in
        Some (opstr ^ "(" ^ ops ^ ")")

let run_func ?am (f : func) : func * bool =
  let dom = Analysis.dominance ?am f in
  let blocks_arr = Array.of_list f.blocks in
  let new_blocks = Array.make (Array.length blocks_arr) None in
  let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 32 in
  let changed = ref false in
  let resolve v =
    match v with
    | Lvalue.Reg (r, _) -> (
        match Sym.Tbl.find_opt subst r with Some v' -> v' | None -> v)
    | _ -> v
  in
  let rec walk bi (avail : (string, Lvalue.t) Hashtbl.t) =
    let avail = Hashtbl.copy avail in
    let b = blocks_arr.(bi) in
    let insts' =
      List.concat_map
        (fun (i : Linstr.t) ->
          let i = Linstr.map_operands resolve i in
          match key_of i with
          | Some key when not (Sym.is_empty i.result) -> (
              match Hashtbl.find_opt avail key with
              | Some v ->
                  changed := true;
                  Sym.Tbl.replace subst i.result v;
                  []
              | None ->
                  Hashtbl.replace avail key (Lvalue.Reg (i.result, i.ty));
                  [ i ])
          | _ -> [ i ])
        b.insts
    in
    new_blocks.(bi) <- Some { b with insts = insts' };
    List.iter (fun c -> walk c avail) dom.Dominance.children.(bi)
  in
  if Array.length blocks_arr > 0 then walk 0 (Hashtbl.create 32);
  let blocks =
    List.mapi
      (fun bi b -> Option.value ~default:b new_blocks.(bi))
      f.blocks
  in
  let f' = Findex.substitute_func subst { f with blocks } in
  (f', !changed)

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
