(** Loop-carried memory-dependence analysis.

    For each {!Loop_info} loop this module collects the load/store
    accesses in the loop body, recovers each access's subscript
    expressions as affine forms over SSA registers (walking GEP index
    expressions through adds, constant multiplies, shifts and integer
    casts), and runs a per-dimension delta test between every pair of
    accesses with at least one store whose base regions {!Alias} cannot
    prove disjoint:

    - {b Independent} — the subscripts can never collide across
      iterations of the analyzed loop (or the roots never alias);
    - {b Intra} — they collide only within one iteration (no carried
      dependence, pipelining is unaffected);
    - {b Carried d} — iterations [d] apart touch the same element; a
      pipelined II below the recurrence latency divided by [d] is
      infeasible;
    - {b Unknown} — the analysis cannot bound the dependence (assume
      carried at distance 1 when scheduling).

    Base-region disjointness is {!Alias.base_alias}, not raw root-name
    equality: two accesses through pointers whose roots cannot be
    resolved (phi/select/call-defined) pair up as {b Unknown} instead
    of being silently treated as independent arrays.

    The affine-form machinery lives in {!Alias} and is re-exported
    here for compatibility with existing consumers.

    SSA registers that the walker cannot expand stay {e atomic}: an
    atom defined outside the loop is a fixed unknown (it cancels when
    both subscripts use it identically), while an atom defined inside
    the loop takes fresh values every iteration and defeats exact
    distance computation. *)

open Linstr
module Sym = Support.Interner

(* ------------------------------------------------------------------ *)
(* Affine forms — hosted by {!Alias}, re-exported for compatibility   *)
(* ------------------------------------------------------------------ *)

type form = Alias.form = { terms : (Sym.t * int) list; konst : int }

let const_form = Alias.const_form
let atom_form = Alias.atom_form
let form_add = Alias.form_add
let form_scale = Alias.form_scale
let form_sub = Alias.form_sub
let coeff_of = Alias.coeff_of
let drop_atom = Alias.drop_atom
let form_to_string = Alias.form_to_string
let form_of = Alias.form_of

(* ------------------------------------------------------------------ *)
(* Accesses                                                           *)
(* ------------------------------------------------------------------ *)

type access = {
  acc_block : int;
  acc_index : int;  (** instruction index within its block *)
  acc_is_store : bool;
  acc_array : string;  (** root parameter / alloca / global *)
  acc_ptr : Lvalue.t;  (** the address operand, for alias queries *)
  acc_subs : form list option;
      (** one form per GEP index (leading pointer index included);
          [None] when the address is not a single GEP from the root *)
  acc_inst : Linstr.t;
}

(** Subscript forms of a pointer: requires the address to be one GEP
    whose base resolves directly to the root (the canonical shape after
    the adaptor's GEP canonicalization); anything else is opaque. *)
let subscripts = Alias.subscripts

(** All loads/stores whose block lies in loop [j]'s body. *)
let accesses_in (cfg : Cfg.t) (li : Loop_info.t) (j : int) : access list =
  let idx = Findex.build cfg.Cfg.func in
  let body = li.Loop_info.loops.(j).Loop_info.body in
  let out = ref [] in
  List.iter
    (fun b ->
      let blk = Cfg.block cfg b in
      List.iteri
        (fun ii (i : Linstr.t) ->
          let record is_store p =
            match Findex.base_pointer idx p with
            | Some root ->
                out :=
                  {
                    acc_block = b;
                    acc_index = ii;
                    acc_is_store = is_store;
                    acc_array = Sym.name root;
                    acc_ptr = p;
                    acc_subs = subscripts idx p;
                    acc_inst = i;
                  }
                  :: !out
            | None -> ()
          in
          match i.op with
          | Load (_, p) -> record false p
          | Store (_, p) -> record true p
          | _ -> ())
        blk.Lmodule.insts)
    (List.sort compare body);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The delta test                                                     *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Independent
  | Intra  (** dependence only within a single iteration *)
  | Carried of int  (** minimum positive iteration distance *)
  | Unknown

let verdict_to_string = function
  | Independent -> "independent"
  | Intra -> "intra-iteration"
  | Carried d -> Printf.sprintf "carried(distance=%d)" d
  | Unknown -> "unknown"

(** Induction variable of loop [j]: the first header phi whose
    latch-incoming value is an integer add/sub of the phi itself. *)
let iv_phi (cfg : Cfg.t) (li : Loop_info.t) (j : int) : Sym.t option =
  let l = li.Loop_info.loops.(j) in
  let header = Cfg.block cfg l.Loop_info.header in
  let latch_labels = List.map (Cfg.label cfg) l.Loop_info.latches in
  let idx = Findex.build cfg.Cfg.func in
  List.find_map
    (fun (i : Linstr.t) ->
      match i.op with
      | Phi incoming -> (
          let from_latch =
            List.find_opt (fun (_, lbl) -> List.mem lbl latch_labels) incoming
          in
          match from_latch with
          | Some (Lvalue.Reg (next, _), _) -> (
              match Findex.def_instr idx next with
              | Some { op = IBin ((Add | Sub), a, b); _ }
                when Lvalue.same_reg a (Lvalue.Reg (i.result, i.ty))
                     || Lvalue.same_reg b (Lvalue.Reg (i.result, i.ty)) ->
                  Some i.result
              | _ -> None)
          | _ -> None)
      | _ -> None)
    header.Lmodule.insts

(** Per-dimension conclusion of the delta test. *)
type dim_verdict =
  | DAny  (** compatible with any iteration distance *)
  | DExact of int  (** iteration distance must equal exactly this *)
  | DIndep
  | DUnknown

(** Does atom [a] take a fresh value on each iteration of loop [j]?
    True when its definition lives inside the loop body (nested-loop
    induction variables, loads, ...); parameters and defs outside the
    loop are fixed for the loop's whole execution. *)
let varies_in_loop (li : Loop_info.t) (j : int) (idx : Findex.t) (a : Sym.t) :
    bool =
  match Findex.def idx a with
  | Some (Findex.Instr k) ->
      List.mem (Findex.block_of_instr idx k) li.Loop_info.loops.(j).Loop_info.body
  | _ -> false

let dim_test ~iv ~varies (s : form) (t : form) : dim_verdict =
  let a_s = coeff_of s iv and a_t = coeff_of t iv in
  let rest_s = drop_atom s iv and rest_t = drop_atom t iv in
  let has_varying f = List.exists (fun (n, _) -> varies n) f.terms in
  if has_varying rest_s || has_varying rest_t then
    (* fresh values every iteration: the dimension cannot pin a
       distance, but neither can it rule dependence out *)
    DAny
  else
    let delta = form_sub rest_s rest_t in
    if delta.terms <> [] then DUnknown  (* fixed but unknown offset *)
    else
      let c = delta.konst in
      if a_s <> a_t then DUnknown
      else if a_s = 0 then if c = 0 then DAny else DIndep
      else if c mod a_s <> 0 then DIndep
      else DExact (c / a_s)

(** Delta test between two accesses w.r.t. loop [j].  The base-region
    question goes through {!Alias.base_alias}: provably disjoint roots
    are independent, a shared (known) root runs the per-dimension
    delta test, and an unresolvable root pair is {!Unknown} — never
    silently independent. *)
let classify_pair (cfg : Cfg.t) (li : Loop_info.t) (j : int) (s : access)
    (t : access) : verdict =
  let idx = Findex.build cfg.Cfg.func in
  match Alias.base_alias idx s.acc_ptr t.acc_ptr with
  | Alias.No_alias -> Independent
  | Alias.May_alias -> Unknown
  | Alias.Must_alias -> (
      match iv_phi cfg li j with
      | None -> Unknown
      | Some iv -> (
          match (s.acc_subs, t.acc_subs) with
          | Some subs_s, Some subs_t
            when List.length subs_s = List.length subs_t ->
              let varies = varies_in_loop li j idx in
              let dims =
                List.map2 (fun a b -> dim_test ~iv ~varies a b) subs_s subs_t
              in
              if List.mem DIndep dims then Independent
              else if List.mem DUnknown dims then Unknown
              else
                let exacts =
                  List.filter_map
                    (function DExact k -> Some k | _ -> None)
                    dims
                in
                (match List.sort_uniq compare exacts with
                | [] -> Carried 1  (* same element on every iteration *)
                | [ 0 ] -> Intra
                | [ k ] -> Carried (abs k)
                | _ -> Independent  (* contradictory distance requirements *))
          | _ -> Unknown))

(* ------------------------------------------------------------------ *)
(* Whole-loop analysis                                                *)
(* ------------------------------------------------------------------ *)

type dep = {
  dep_array : string;
  dep_src : access;  (** the store of the pair *)
  dep_dst : access;
  dep_verdict : verdict;
}

let dep_to_string (cfg : Cfg.t) (d : dep) =
  let pos (a : access) =
    Printf.sprintf "%s@%%%s"
      (if a.acc_is_store then "store" else "load")
      (Sym.name (Cfg.label cfg a.acc_block))
  in
  Printf.sprintf "%s: %s -> %s: %s" d.dep_array (pos d.dep_src)
    (pos d.dep_dst)
    (verdict_to_string d.dep_verdict)

(** All dependence pairs (at least one store) whose base regions may
    overlap inside loop [j], with their verdicts.  Store/store pairs
    are included once ([src] is always a store); a store is also
    paired with itself — that is how a subscript invariant in [j]'s IV
    ("same element every iteration") surfaces as a carried output
    dependence.  Pairing is by {!Alias.base_alias}, so accesses
    through unresolvable pointers pair with everything rather than
    being dropped. *)
let analyze_loop (cfg : Cfg.t) (li : Loop_info.t) (j : int) : dep list =
  let idx = Findex.build cfg.Cfg.func in
  let accs = accesses_in cfg li j in
  let deps = ref [] in
  let consider (s : access) (t : access) =
    let v = classify_pair cfg li j s t in
    deps := { dep_array = s.acc_array; dep_src = s; dep_dst = t; dep_verdict = v } :: !deps
  in
  let stores = List.filter (fun a -> a.acc_is_store) accs in
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          if Alias.base_alias idx s.acc_ptr t.acc_ptr <> Alias.No_alias then
            if t.acc_is_store then begin
              (* count each store/store pair once, self-pairs included *)
              if
                (t.acc_block, t.acc_index) >= (s.acc_block, s.acc_index)
              then consider s t
            end
            else consider s t)
        accs)
    stores;
  List.rev !deps

(** The loop-carried (or unboundable) subset of {!analyze_loop}. *)
let carried (deps : dep list) : dep list =
  List.filter
    (fun d -> match d.dep_verdict with Carried _ | Unknown -> true | _ -> false)
    deps

(** Analyze every loop of a function: [(loop index, deps)] pairs. *)
let analyze (f : Lmodule.func) : (int * dep list) list =
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  List.init (Array.length li.Loop_info.loops) (fun j ->
      (j, analyze_loop cfg li j))
