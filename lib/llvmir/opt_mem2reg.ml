(** Promotion of scalar allocas to SSA registers (mem2reg), using the
    standard dominance-frontier phi placement.

    An alloca is promotable when it holds a scalar type and every use
    is a direct [load]/[store] of the whole slot (no GEPs, no escapes
    via calls or pointer arithmetic).  The C-round-trip flow relies on
    this pass: the mini-C front-end emits every local through an
    alloca, just like Clang at -O0, and Vitis runs mem2reg first. *)

open Linstr
open Lmodule
module Sym = Support.Interner

type alloca_info = { name : Sym.t; ty : Ltype.t }

(** Find promotable allocas in [f]. *)
let promotable (f : func) : alloca_info list =
  let candidates = Sym.Tbl.create 16 in
  iter_insts
    (fun (i : Linstr.t) ->
      match i.op with
      | Alloca (ty, 1)
        when (Ltype.is_int ty || Ltype.is_float ty)
             && not (Sym.is_empty i.result) ->
          Sym.Tbl.replace candidates i.result ty
      | _ -> ())
    f;
  (* disqualify escaping uses *)
  iter_insts
    (fun (i : Linstr.t) ->
      let disqualify v =
        match v with
        | Lvalue.Reg (n, _) -> Sym.Tbl.remove candidates n
        | _ -> ()
      in
      match i.op with
      | Load (_, _ptr) -> ()  (* pointer operand of load is fine *)
      | Store (v, _ptr) -> disqualify v  (* storing the pointer itself escapes *)
      | _ -> List.iter disqualify (operands i))
    f;
  Sym.Tbl.fold (fun name ty acc -> { name; ty } :: acc) candidates []

let run_func ?am (f : func) : func * bool =
  let allocas = promotable f in
  if allocas = [] then (f, false)
  else begin
    let cfg = Analysis.cfg ?am f in
    let dom = Analysis.dominance ?am f in
    let df = Dominance.frontiers dom in
    let names = namegen f in
    let n = Cfg.n_blocks cfg in
    let alloca_tbl = Sym.Tbl.create 8 in
    List.iter (fun a -> Sym.Tbl.replace alloca_tbl a.name a.ty) allocas;
    (* blocks containing a store to each alloca *)
    let def_blocks = Sym.Tbl.create 8 in
    List.iteri
      (fun bi (b : block) ->
        List.iter
          (fun (i : Linstr.t) ->
            match i.op with
            | Store (_, Lvalue.Reg (p, _)) when Sym.Tbl.mem alloca_tbl p ->
                let cur =
                  Option.value ~default:[] (Sym.Tbl.find_opt def_blocks p)
                in
                if not (List.mem bi cur) then
                  Sym.Tbl.replace def_blocks p (bi :: cur)
            | _ -> ())
          b.insts)
      f.blocks;
    (* phi placement: iterated dominance frontier *)
    (* phis.(bi) : (alloca_name, phi_reg) list *)
    let phis : (Sym.t * Sym.t) list array = Array.make n [] in
    List.iter
      (fun a ->
        let work = Queue.create () in
        List.iter
          (fun bi -> Queue.add bi work)
          (Option.value ~default:[] (Sym.Tbl.find_opt def_blocks a.name));
        let placed = Array.make n false in
        while not (Queue.is_empty work) do
          let bi = Queue.pop work in
          List.iter
            (fun fb ->
              if not placed.(fb) then begin
                placed.(fb) <- true;
                let reg =
                  Sym.intern
                    (Support.Namegen.fresh names (Sym.name a.name ^ ".phi"))
                in
                phis.(fb) <- (a.name, reg) :: phis.(fb);
                Queue.add fb work
              end)
            df.(bi)
        done)
      allocas;
    (* renaming walk over the dominator tree *)
    let blocks_arr = Array.of_list f.blocks in
    let new_blocks = Array.make n None in
    let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 32 in
    (* incoming values for placed phis: (block, phi_reg) -> (value, pred) list *)
    let phi_incoming : (int * Sym.t, (Lvalue.t * Sym.t) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    Array.iteri
      (fun bi ps ->
        List.iter
          (fun (_, reg) -> Hashtbl.replace phi_incoming (bi, reg) (ref []))
          ps)
      phis;
    let undef_of ty = Lvalue.Const (Lvalue.CUndef ty) in
    let rec rename bi (cur : (Sym.t, Lvalue.t) Hashtbl.t) =
      let b = blocks_arr.(bi) in
      let cur = Hashtbl.copy cur in
      (* bind phi registers first *)
      List.iter
        (fun (aname, reg) ->
          let ty = Sym.Tbl.find alloca_tbl aname in
          Hashtbl.replace cur aname (Lvalue.Reg (reg, ty)))
        phis.(bi);
      let resolve v =
        match v with
        | Lvalue.Reg (r, _) -> (
            match Sym.Tbl.find_opt subst r with Some v' -> v' | None -> v)
        | _ -> v
      in
      let insts' =
        List.concat_map
          (fun (i : Linstr.t) ->
            let i = Linstr.map_operands resolve i in
            match i.op with
            | Alloca (_, _) when Sym.Tbl.mem alloca_tbl i.result -> []
            | Store (v, Lvalue.Reg (p, _)) when Sym.Tbl.mem alloca_tbl p ->
                Hashtbl.replace cur p (resolve v);
                []
            | Load (ty, Lvalue.Reg (p, _)) when Sym.Tbl.mem alloca_tbl p ->
                let v =
                  match Hashtbl.find_opt cur p with
                  | Some v -> v
                  | None -> undef_of ty
                in
                Sym.Tbl.replace subst i.result v;
                []
            | _ -> [ i ])
          b.insts
      in
      new_blocks.(bi) <- Some { b with insts = insts' };
      (* record incoming values for successor phis *)
      List.iter
        (fun si ->
          List.iter
            (fun (aname, reg) ->
              let ty = Sym.Tbl.find alloca_tbl aname in
              let v =
                match Hashtbl.find_opt cur aname with
                | Some v -> v
                | None -> undef_of ty
              in
              let r = Hashtbl.find phi_incoming (si, reg) in
              r := (v, b.label) :: !r)
            phis.(si))
        cfg.Cfg.succs.(bi);
      (* recurse into dominator children *)
      List.iter (fun child -> rename child cur) dom.Dominance.children.(bi)
    in
    rename 0 (Hashtbl.create 8);
    (* materialize phi instructions at block heads *)
    let final_blocks =
      List.mapi
        (fun bi (b : block) ->
          let b = Option.value ~default:b new_blocks.(bi) in
          let phi_insts =
            List.rev_map
              (fun (aname, reg) ->
                let ty = Sym.Tbl.find alloca_tbl aname in
                let incoming =
                  List.rev !(Hashtbl.find phi_incoming (bi, reg))
                in
                { Linstr.result = reg; ty; op = Phi incoming; imeta = [] })
              phis.(bi)
          in
          { b with insts = phi_insts @ b.insts })
        f.blocks
    in
    let f' = { f with blocks = final_blocks } in
    (* substitutions recorded during renaming must also rewrite uses that
       appear before their defs in layout order (loop-carried phis) *)
    let f' = Findex.substitute_func subst f' in
    (f', true)
  end

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
