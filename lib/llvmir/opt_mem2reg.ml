(** Promotion of scalar allocas to SSA registers (mem2reg), using the
    standard dominance-frontier phi placement.

    An alloca is promotable when it holds a scalar type and every use
    is a direct [load]/[store] of the whole slot (no GEPs, no escapes
    via calls or pointer arithmetic).  The C-round-trip flow relies on
    this pass: the mini-C front-end emits every local through an
    alloca, just like Clang at -O0, and Vitis runs mem2reg first.

    The candidate scan and the renaming walk run on the packed
    {!Iarena}: promotability is a slot-role check per operand, the
    rename walk kills allocas/stores/loads in place and records the
    load substitution, and one final pass writes the path-compressed
    substitution into the operand slots of the recorded users before
    materialising blocks with their phi heads. *)

open Lmodule
module Sym = Support.Interner

type alloca_info = { name : Sym.t; ty : Ltype.t }

(** Find promotable allocas. *)
let promotable (a : Iarena.t) : alloca_info list =
  let candidates = Sym.Tbl.create 16 in
  let n = Iarena.n_instrs a in
  for k = 0 to n - 1 do
    if Iarena.tag a k = Iarena.tag_alloca && Iarena.aux1 a k = 1 then begin
      let ty = Iarena.ty_of_ix a (Iarena.aux0 a k) in
      if
        (Ltype.is_int ty || Ltype.is_float ty)
        && not (Sym.is_empty (Iarena.result a k))
      then Sym.Tbl.replace candidates (Iarena.result a k) ty
    end
  done;
  (* disqualify escaping uses: every operand slot except a load's
     pointer and a store's pointer *)
  for k = 0 to n - 1 do
    let tg = Iarena.tag a k in
    if tg <> Iarena.tag_load then begin
      let o = Iarena.op_off a k in
      (* store: only the value slot [o] escapes; the pointer slot is a
         direct use *)
      let stop = if tg = Iarena.tag_store then o else o + Iarena.op_len a k - 1 in
      for s = o to stop do
        match Iarena.opnd a s with
        | Lvalue.Reg (nm, _) -> Sym.Tbl.remove candidates nm
        | _ -> ()
      done
    end
  done;
  Sym.Tbl.fold (fun name ty acc -> { name; ty } :: acc) candidates []

let run_func ?am (f : func) : func * bool =
  let idx = Analysis.findex ?am f in
  let a = Findex.arena idx in
  let allocas = promotable a in
  if allocas = [] then (f, false)
  else begin
    let cfg = Analysis.cfg ?am f in
    let dom = Analysis.dominance ?am f in
    let df = Dominance.frontiers dom in
    let names = namegen f in
    let n = Cfg.n_blocks cfg in
    let alloca_tbl = Sym.Tbl.create 8 in
    List.iter (fun al -> Sym.Tbl.replace alloca_tbl al.name al.ty) allocas;
    (* blocks containing a store to each alloca *)
    let def_blocks = Sym.Tbl.create 8 in
    for k = 0 to Iarena.n_instrs a - 1 do
      if Iarena.tag a k = Iarena.tag_store then
        match Iarena.opnd a (Iarena.op_off a k + 1) with
        | Lvalue.Reg (p, _) when Sym.Tbl.mem alloca_tbl p ->
            let bi = Iarena.block_of a k in
            let cur =
              Option.value ~default:[] (Sym.Tbl.find_opt def_blocks p)
            in
            if not (List.mem bi cur) then
              Sym.Tbl.replace def_blocks p (bi :: cur)
        | _ -> ()
    done;
    (* phi placement: iterated dominance frontier *)
    (* phis.(bi) : (alloca_name, phi_reg) list *)
    let phis : (Sym.t * Sym.t) list array = Array.make n [] in
    List.iter
      (fun al ->
        let work = Queue.create () in
        List.iter
          (fun bi -> Queue.add bi work)
          (Option.value ~default:[] (Sym.Tbl.find_opt def_blocks al.name));
        let placed = Array.make n false in
        while not (Queue.is_empty work) do
          let bi = Queue.pop work in
          List.iter
            (fun fb ->
              if not placed.(fb) then begin
                placed.(fb) <- true;
                let reg =
                  Sym.intern
                    (Support.Namegen.fresh names (Sym.name al.name ^ ".phi"))
                in
                phis.(fb) <- (al.name, reg) :: phis.(fb);
                Queue.add fb work
              end)
            df.(bi)
        done)
      allocas;
    (* renaming walk over the dominator tree: kill promoted
       allocas/stores/loads in place, record the load substitution *)
    let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 32 in
    (* incoming values for placed phis: (block, phi_reg) -> (value, pred) list *)
    let phi_incoming : (int * Sym.t, (Lvalue.t * Sym.t) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    Array.iteri
      (fun bi ps ->
        List.iter
          (fun (_, reg) -> Hashtbl.replace phi_incoming (bi, reg) (ref []))
          ps)
      phis;
    let undef_of ty = Lvalue.Const (Lvalue.CUndef ty) in
    let resolve v =
      match v with
      | Lvalue.Reg (r, _) -> (
          match Sym.Tbl.find_opt subst r with Some v' -> v' | None -> v)
      | _ -> v
    in
    let rec rename bi (cur : (Sym.t, Lvalue.t) Hashtbl.t) =
      let cur = Hashtbl.copy cur in
      (* bind phi registers first *)
      List.iter
        (fun (aname, reg) ->
          let ty = Sym.Tbl.find alloca_tbl aname in
          Hashtbl.replace cur aname (Lvalue.Reg (reg, ty)))
        phis.(bi);
      for k = Iarena.block_start a bi to Iarena.block_stop a bi - 1 do
        let tg = Iarena.tag a k in
        let o = Iarena.op_off a k in
        if tg = Iarena.tag_alloca then begin
          if Sym.Tbl.mem alloca_tbl (Iarena.result a k) then Iarena.kill a k
        end
        else if tg = Iarena.tag_store then begin
          match Iarena.opnd a (o + 1) with
          | Lvalue.Reg (p, _) when Sym.Tbl.mem alloca_tbl p ->
              (* the stored value resolves through the substitution as
                 known so far, like the sequential rename it mirrors *)
              Hashtbl.replace cur p (resolve (resolve (Iarena.opnd a o)));
              Iarena.kill a k
          | _ -> ()
        end
        else if tg = Iarena.tag_load then begin
          match Iarena.opnd a o with
          | Lvalue.Reg (p, _) when Sym.Tbl.mem alloca_tbl p ->
              let v =
                match Hashtbl.find_opt cur p with
                | Some v -> v
                | None -> undef_of (Iarena.ty_of_ix a (Iarena.aux0 a k))
              in
              Sym.Tbl.replace subst (Iarena.result a k) v;
              Iarena.kill a k
          | _ -> ()
        end
      done;
      (* record incoming values for successor phis *)
      List.iter
        (fun si ->
          List.iter
            (fun (aname, reg) ->
              let ty = Sym.Tbl.find alloca_tbl aname in
              let v =
                match Hashtbl.find_opt cur aname with
                | Some v -> v
                | None -> undef_of ty
              in
              let r = Hashtbl.find phi_incoming (si, reg) in
              r := (v, Iarena.block_label a bi) :: !r)
            phis.(si))
        cfg.Cfg.succs.(bi);
      (* recurse into dominator children *)
      List.iter (fun child -> rename child cur) dom.Dominance.children.(bi)
    in
    rename 0 (Hashtbl.create 8);
    (* substitutions recorded during renaming must also rewrite uses
       that appear before their defs in layout order (loop-carried
       phis): write the path-compressed table into the operand slots
       of every recorded user, then materialise *)
    let resolved = Findex.compress_chains subst in
    let cresolve v =
      match v with
      | Lvalue.Reg (r, _) -> (
          match Sym.Tbl.find_opt resolved r with Some v' -> v' | None -> v)
      | _ -> v
    in
    Sym.Tbl.iter
      (fun nm _ ->
        Findex.iter_users idx nm (fun k ->
            if not (Iarena.is_dead a k) then begin
              let o = Iarena.op_off a k in
              for s = o to o + Iarena.op_len a k - 1 do
                match Iarena.opnd a s with
                | Lvalue.Reg (r, _) -> (
                    match Sym.Tbl.find_opt resolved r with
                    | Some v' -> Iarena.set_opnd a k s v'
                    | None -> ())
                | _ -> ()
              done
            end))
      subst;
    (* materialize phi instructions at block heads *)
    let final_blocks =
      List.init n (fun bi ->
          let phi_insts =
            List.rev_map
              (fun (aname, reg) ->
                let ty = Sym.Tbl.find alloca_tbl aname in
                let incoming =
                  List.map
                    (fun (v, l) -> (cresolve v, l))
                    (List.rev !(Hashtbl.find phi_incoming (bi, reg)))
                in
                { Linstr.result = reg; ty; op = Linstr.Phi incoming; imeta = [] })
              phis.(bi)
          in
          let insts = ref [] in
          for k = Iarena.block_stop a bi - 1 downto Iarena.block_start a bi do
            if not (Iarena.is_dead a k) then insts := Iarena.instr a k :: !insts
          done;
          { label = Iarena.block_label a bi; insts = phi_insts @ !insts })
    in
    ({ f with blocks = final_blocks }, true)
  end

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
