(** Dead code elimination: removes pure instructions whose results are
    unused, plus calls to known-pure intrinsics.  A worklist over the
    function index's use counts cascades through chains of dead
    instructions without ever re-indexing the function.

    The whole pass runs on the packed {!Iarena}: kill flags and the
    dense use-count array are the only state, the cascade walks
    operand-pool slots through {!Findex.local_of_slot} with no hashing
    and no allocation, and the surviving rows materialise physically
    identical to the input.  When run under a manager the pass indexes
    the compacted arena it just wrote and seeds the analysis cache, so
    the post-pass verifier reads the same flat storage. *)

open Lmodule
module Sym = Support.Interner

(** Intrinsics with no side effects (safe to delete when unused). *)
let pure_intrinsic name =
  let starts_with p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  starts_with "llvm.smax." || starts_with "llvm.smin."
  || starts_with "llvm.umax." || starts_with "llvm.umin."
  || starts_with "llvm.abs." || starts_with "llvm.fmuladd."
  || starts_with "llvm.fma." || starts_with "llvm.fabs."
  || starts_with "llvm.sqrt."

let run_func ?am (f : func) : func * bool =
  let idx = Analysis.findex ?am f in
  let a = Findex.arena idx in
  let n = Iarena.n_instrs a in
  (* operand-occurrence counts among still-live instructions, by dense
     local id *)
  let counts = Findex.use_counts idx in
  let worklist = ref [] in
  let removable k =
    let tg = Iarena.tag a k in
    Iarena.pure_tag tg
    || (tg = Iarena.tag_call && pure_intrinsic (Iarena.callee a k))
  in
  let try_kill k =
    if not (Iarena.is_dead a k) then begin
      let l = Findex.local_of_res idx k in
      if l >= 0 && counts.(l) = 0 && removable k then begin
        Iarena.kill a k;
        worklist := k :: !worklist
      end
    end
  in
  for k = 0 to n - 1 do
    try_kill k
  done;
  let rec drain () =
    match !worklist with
    | [] -> ()
    | k :: rest ->
        worklist := rest;
        let o = Iarena.op_off a k in
        for s = o to o + Iarena.op_len a k - 1 do
          let l = Findex.local_of_slot idx s in
          if l >= 0 then begin
            counts.(l) <- counts.(l) - 1;
            if counts.(l) = 0 then
              match Findex.def_of_local idx l with
              | Some (Findex.Instr dk) -> try_kill dk
              | _ -> ()
          end
        done;
        drain ()
  in
  drain ();
  if Iarena.live_count a = n then (f, false)
  else begin
    let f' = { f with blocks = Iarena.to_blocks a } in
    (match am with
    | Some am ->
        Analysis.seed_findex am f' (Findex.of_arena f' (Iarena.compact a))
    | None -> ());
    (f', true)
  end

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
