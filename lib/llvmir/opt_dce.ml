(** Dead code elimination: removes pure instructions whose results are
    unused, plus calls to known-pure intrinsics.  A worklist over the
    function index's use counts cascades through chains of dead
    instructions without ever re-indexing the function. *)

open Lmodule
module Sym = Support.Interner

(** Intrinsics with no side effects (safe to delete when unused). *)
let pure_intrinsic name =
  let starts_with p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  starts_with "llvm.smax." || starts_with "llvm.smin."
  || starts_with "llvm.umax." || starts_with "llvm.umin."
  || starts_with "llvm.abs." || starts_with "llvm.fmuladd."
  || starts_with "llvm.fma." || starts_with "llvm.fabs."
  || starts_with "llvm.sqrt."

let removable (i : Linstr.t) =
  Linstr.is_pure i
  ||
  match i.op with
  | Linstr.Call { callee; _ } -> pure_intrinsic callee
  | _ -> false

let run_func ?am (f : func) : func * bool =
  let idx = Analysis.findex ?am f in
  let n = Findex.n_instrs idx in
  let dead = Array.make (max 1 n) false in
  (* operand-occurrence counts among still-live instructions, seeded
     from the index on first touch *)
  let counts : int ref Sym.Tbl.t = Sym.Tbl.create 32 in
  let count nm =
    match Sym.Tbl.find_opt counts nm with
    | Some r -> r
    | None ->
        let r = ref (Findex.use_count idx nm) in
        Sym.Tbl.replace counts nm r;
        r
  in
  let worklist = ref [] in
  let try_kill k =
    let i = Findex.instr idx k in
    if
      (not dead.(k))
      && (not (Sym.is_empty i.Linstr.result))
      && !(count i.Linstr.result) = 0
      && removable i
    then begin
      dead.(k) <- true;
      worklist := k :: !worklist
    end
  in
  for k = 0 to n - 1 do
    try_kill k
  done;
  let rec drain () =
    match !worklist with
    | [] -> ()
    | k :: rest ->
        worklist := rest;
        Linstr.iter_operands
          (function
            | Lvalue.Reg (nm, _) -> (
                let r = count nm in
                decr r;
                if !r = 0 then
                  match Findex.def idx nm with
                  | Some (Findex.Instr dk) -> try_kill dk
                  | _ -> ())
            | _ -> ())
          (Findex.instr idx k);
        drain ()
  in
  drain ();
  let changed = ref false in
  let pos = ref 0 in
  let blocks =
    List.map
      (fun (b : block) ->
        let insts =
          List.rev
            (List.fold_left
               (fun acc i ->
                 let k = !pos in
                 incr pos;
                 if dead.(k) then begin
                   changed := true;
                   acc
                 end
                 else i :: acc)
               [] b.insts)
        in
        { b with insts })
      f.blocks
  in
  if !changed then ({ f with blocks }, true) else (f, false)

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
