(** Race checker over {!Effects} footprints.  See the interface. *)

module Sym = Support.Interner

type conflict =
  | Global_write_write of string * string * string
  | Global_read_write of string * string * string
  | Unknown_effects of string * string list

type verdict = Safe | Unsafe of conflict list

let conflict_to_string = function
  | Global_write_write (fa, fb, g) ->
      Printf.sprintf "@%s and @%s both write global @%s" fa fb g
  | Global_read_write (fa, fb, g) ->
      Printf.sprintf "@%s writes global @%s that @%s reads" fa g fb
  | Unknown_effects (f, reasons) ->
      Printf.sprintf "@%s has unknown effects (%s)" f
        (String.concat ", " reasons)

let verdict_to_string = function
  | Safe -> "safe"
  | Unsafe cs ->
      Printf.sprintf "unsafe:\n%s"
        (String.concat "\n"
           (List.map (fun c -> "  " ^ conflict_to_string c) cs))

let json_escape (s : string) =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let conflict_to_json = function
  | Global_write_write (fa, fb, g) ->
      Printf.sprintf
        "{\"kind\": \"write-write\", \"a\": %s, \"b\": %s, \"global\": %s}"
        (jstr fa) (jstr fb) (jstr g)
  | Global_read_write (fa, fb, g) ->
      Printf.sprintf
        "{\"kind\": \"read-write\", \"a\": %s, \"b\": %s, \"global\": %s}"
        (jstr fa) (jstr fb) (jstr g)
  | Unknown_effects (f, reasons) ->
      Printf.sprintf
        "{\"kind\": \"unknown-effects\", \"function\": %s, \"reasons\": [%s]}"
        (jstr f)
        (String.concat ", " (List.map jstr reasons))

let to_json = function
  | Safe -> "{\"verdict\": \"safe\"}"
  | Unsafe cs ->
      Printf.sprintf "{\"verdict\": \"unsafe\", \"conflicts\": [%s]}"
        (String.concat ", " (List.map conflict_to_json cs))

let check ?effects (m : Lmodule.t) : verdict =
  match m.Lmodule.funcs with
  | [] | [ _ ] -> Safe
  | funcs ->
      let eff =
        match effects with Some e -> e | None -> Effects.summarize m
      in
      let fps =
        List.filter_map
          (fun (f : Lmodule.func) ->
            Option.map
              (fun fp -> (f.Lmodule.fname, fp))
              (Effects.footprint eff f.Lmodule.fname))
          funcs
      in
      let conflicts = ref [] in
      let add c = conflicts := c :: !conflicts in
      (* open footprints conflict with everything *)
      List.iter
        (fun (fn, fp) ->
          if not (Effects.closed fp) then
            add (Unknown_effects (fn, fp.Effects.fp_unknown)))
        fps;
      (* pairwise global overlap with at least one writer *)
      let rec pairs = function
        | [] -> ()
        | (fa, fpa) :: rest ->
            List.iter
              (fun (fb, fpb) ->
                Sym.Map.iter
                  (fun g ma ->
                    let mb = Effects.global_mode fpb g in
                    let gname = Sym.name g in
                    if Effects.writes ma && Effects.writes mb then
                      add (Global_write_write (fa, fb, gname))
                    else if Effects.writes ma && Effects.reads mb then
                      add (Global_read_write (fa, fb, gname))
                    else if Effects.reads ma && Effects.writes mb then
                      add (Global_read_write (fb, fa, gname)))
                  fpa.Effects.fp_globals)
              rest;
            pairs rest
      in
      pairs fps;
      (* deterministic order: the functions came in module order, so a
         stable sort on the rendered form is reproducible *)
      let cs =
        List.sort_uniq
          (fun a b -> compare (conflict_to_string a) (conflict_to_string b))
          (List.rev !conflicts)
      in
      if cs = [] then Safe else Unsafe cs
