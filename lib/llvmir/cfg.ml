(** Control-flow graph over a function's blocks: successor/predecessor
    maps and orderings used by the dominance and loop analyses. *)

module Sym = Support.Interner

type t = {
  func : Lmodule.func;
  order : Sym.t array;  (** block labels in layout order; [0] = entry *)
  index : int Sym.Tbl.t;
  succs : int list array;
  preds : int list array;
}

let fail = Support.Err.fail ~pass:"llvmir.cfg"

let build (f : Lmodule.func) : t =
  let order = Array.of_list (List.map (fun b -> b.Lmodule.label) f.blocks) in
  let index = Sym.Tbl.create 16 in
  Array.iteri (fun i l -> Sym.Tbl.replace index l i) order;
  let n = Array.length order in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  List.iteri
    (fun i (b : Lmodule.block) ->
      match List.rev b.insts with
      | term :: _ ->
          let ss =
            List.map
              (fun l ->
                match Sym.Tbl.find_opt index l with
                | Some j -> j
                | None -> fail "branch to unknown block %%%s" (Sym.name l))
              (Linstr.successors term)
          in
          succs.(i) <- ss;
          List.iter (fun j -> preds.(j) <- i :: preds.(j)) ss
      | [] -> fail "empty block %%%s" (Sym.name b.Lmodule.label))
    f.blocks;
  Array.iteri (fun j ps -> preds.(j) <- List.rev ps) preds;
  { func = f; order; index; succs; preds }

let n_blocks t = Array.length t.order
let label t i = t.order.(i)
let index_of t l = Sym.Tbl.find_opt t.index l

(** Lookup by label text — intended for tests and diagnostics; hot
    paths should intern once and use {!index_of}. *)
let index_of_exn t l =
  match index_of t (Sym.intern l) with
  | Some i -> i
  | None -> fail "unknown block %%%s" l

let block t i = Lmodule.find_block_exn t.func t.order.(i)

(** Rebase a cached CFG onto a rewritten function value.  Only valid
    when the rewrite preserved the CFG shape (same block labels and
    edges) — the analysis-manager preserve contract. *)
let rebase t (f : Lmodule.func) = { t with func = f }

(** Reverse postorder of the blocks reachable from entry. *)
let reverse_postorder t : int list =
  let n = n_blocks t in
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succs.(i);
      post := i :: !post
    end
  in
  if n > 0 then dfs 0;
  !post

(** Blocks unreachable from the entry. *)
let unreachable_blocks t : int list =
  let reach = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace reach i ()) (reverse_postorder t);
  let out = ref [] in
  for i = n_blocks t - 1 downto 0 do
    if not (Hashtbl.mem reach i) then out := i :: !out
  done;
  !out
