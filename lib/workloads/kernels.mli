(** The kernel zoo: PolyBench-style workloads expressed as MHIR
    builders, each with a scalar reference implementation for cosim.

    Builder internals (attribute plumbing, the shared matmul emitter)
    are not exported — construct kernels through the named
    constructors and drive them via the [build] field. *)

type strategy = Inner | Middle

(** Directive bundle applied when building a kernel: where to pipeline
    ([strategy]), target II, unroll factor, and array partitioning as
    [(array, kind, factor, dim)]. *)
type directives = {
  pipeline_ii : int option;
  unroll : int option;
  strategy : strategy;
  partitions : (string * string * int * int) list;
}

val no_directives : directives
val pipelined : directives
val optimized : ?factor:int -> parts:(string * int) list -> unit -> directives

type kernel = {
  kname : string;
  description : string;
  args : (string * int list) list;  (** argument name and dims *)
  outputs : string list;
  build : directives -> Mhir.Ir.modul;
  reference : float array list -> unit;
}

val gemm : ?n:int -> unit -> kernel
val mm2 : ?n:int -> unit -> kernel
val mm3 : ?n:int -> unit -> kernel
val atax : ?n:int -> unit -> kernel
val bicg : ?n:int -> unit -> kernel
val mvt : ?n:int -> unit -> kernel
val gesummv : ?n:int -> unit -> kernel
val fir : ?n:int -> ?taps:int -> unit -> kernel
val conv2d : ?h:int -> ?w:int -> ?k:int -> unit -> kernel
val jacobi2d : ?n:int -> unit -> kernel
val syrk : ?n:int -> unit -> kernel
val doitgen : ?r:int -> ?q:int -> ?p:int -> unit -> kernel
val seidel2d : ?n:int -> unit -> kernel
val mmcall : ?n:int -> unit -> kernel

(** Every kernel at its default problem size. *)
val all : ?scale:int -> unit -> kernel list

val by_name : string -> kernel option
