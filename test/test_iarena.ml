(** QCheck laws for the packed struct-of-arrays instruction arena:

    - round-trip: decoding every packed row of a freshly encoded
      function yields instructions structurally identical to the
      originals, and [to_blocks] returns the {e physically} identical
      records (the zero-allocation clean path);
    - structural invariants ({!Llvmir.Iarena.check}) hold on encodings
      of random lowered difftest kernels, both before and after the
      default cleanup pipeline has rewritten them;
    - kill + compact: the compacted arena drops exactly the killed
      rows, stays invariant-clean, and agrees with [to_blocks]. *)

open Llvmir
module Sym = Support.Interner

let exception_to_failure name f =
  try f ()
  with e -> QCheck.Test.fail_reportf "%s: %s" name (Printexc.to_string e)

let lowered_of_kernel (rk : Test_random.rkernel) : Lmodule.t =
  Lowering.Lower.lower_module
    (Mhir.Canonicalize.run (Test_random.build_module rk))

(* structural equality through [compare] so float payloads (NaN
   included) compare by their own total order, not [=] *)
let instr_eq (a : Linstr.t) (b : Linstr.t) = Stdlib.compare a b = 0

let check_roundtrip (f : Lmodule.func) : bool =
  let a = Iarena.of_func f in
  (match Iarena.check a with
  | Ok () -> ()
  | Error e -> QCheck.Test.fail_reportf "fresh arena invalid: %s" e);
  let k = ref 0 in
  List.iter
    (fun (b : Lmodule.block) ->
      List.iter
        (fun (i : Linstr.t) ->
          let d = Iarena.decode_packed a !k in
          if not (instr_eq d i) then
            QCheck.Test.fail_reportf "row %d decodes to %s, expected %s" !k
              (Lprinter.inst_to_string d)
              (Lprinter.inst_to_string i);
          if not (Iarena.instr a !k == i) then
            QCheck.Test.fail_reportf "clean row %d not physically retained" !k;
          incr k)
        b.Lmodule.insts)
    f.Lmodule.blocks;
  if !k <> Iarena.n_instrs a then
    QCheck.Test.fail_reportf "arena has %d rows, function %d"
      (Iarena.n_instrs a) !k;
  (* clean materialisation returns the input records themselves *)
  List.iter2
    (fun (b : Lmodule.block) (b' : Lmodule.block) ->
      if not (Sym.equal b.Lmodule.label b'.Lmodule.label) then
        QCheck.Test.fail_reportf "to_blocks moved label %%%s"
          (Sym.name b.Lmodule.label);
      List.iter2
        (fun i i' ->
          if not (i == i') then
            QCheck.Test.fail_reportf "to_blocks copied a clean instruction")
        b.Lmodule.insts b'.Lmodule.insts)
    f.Lmodule.blocks (Iarena.to_blocks a);
  true

let prop_roundtrip =
  QCheck.Test.make ~name:"iarena: decode round-trip is identity" ~count:20
    Test_random.arb_kernel (fun rk ->
      exception_to_failure "iarena round-trip" (fun () ->
          let lm = lowered_of_kernel rk in
          List.for_all check_roundtrip lm.Lmodule.funcs))

let prop_invariants_through_pipeline =
  QCheck.Test.make ~name:"iarena: invariants pre/post pipeline" ~count:15
    Test_random.arb_kernel (fun rk ->
      exception_to_failure "iarena invariants" (fun () ->
          let lm = lowered_of_kernel rk in
          let ok m =
            List.for_all
              (fun f ->
                match Iarena.check (Iarena.of_func f) with
                | Ok () -> true
                | Error e -> QCheck.Test.fail_reportf "invalid arena: %s" e)
              m.Lmodule.funcs
          in
          ok lm
          &&
          let lm', _ = Pass.run_pipeline Pass.default_pipeline lm in
          ok lm' && List.for_all check_roundtrip lm'.Lmodule.funcs))

(** Killing pure rows then compacting drops exactly those rows and
    leaves a checkable arena agreeing with [to_blocks]. *)
let prop_kill_compact =
  QCheck.Test.make ~name:"iarena: kill + compact" ~count:15
    Test_random.arb_kernel (fun rk ->
      exception_to_failure "iarena kill/compact" (fun () ->
          let lm = lowered_of_kernel rk in
          List.for_all
            (fun (f : Lmodule.func) ->
              let a = Iarena.of_func f in
              let n = Iarena.n_instrs a in
              (* kill every other unused pure row — a DCE-shaped cut *)
              let idx = Findex.build f in
              for k = 0 to n - 1 do
                if
                  k mod 2 = 0
                  && Iarena.pure_tag (Iarena.tag a k)
                  && (not (Sym.is_empty (Iarena.result a k)))
                  && Findex.use_count idx (Iarena.result a k) = 0
                then Iarena.kill a k
              done;
              let live = Iarena.live_count a in
              let c = Iarena.compact a in
              (match Iarena.check c with
              | Ok () -> ()
              | Error e ->
                  QCheck.Test.fail_reportf "compacted arena invalid: %s" e);
              if Iarena.n_instrs c <> live then
                QCheck.Test.fail_reportf "compact kept %d rows, expected %d"
                  (Iarena.n_instrs c) live;
              let insts_of bs =
                List.concat_map (fun (b : Lmodule.block) -> b.Lmodule.insts) bs
              in
              let from_blocks = insts_of (Iarena.to_blocks a) in
              let from_compact =
                List.init (Iarena.n_instrs c) (Iarena.instr c)
              in
              List.length from_blocks = List.length from_compact
              && List.for_all2 instr_eq from_blocks from_compact)
            lm.Lmodule.funcs))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_invariants_through_pipeline; prop_kill_compact ]
