(** Tests for the mhir-level loop unroller (the cross-layer
    optimization extension). *)

open Mhir
module K = Workloads.Kernels

let count_loops (f : Ir.func) =
  let n = ref 0 in
  Ir.walk_func (fun o -> if o.Ir.name = "affine.for" then incr n) f;
  !n

let inner_step (f : Ir.func) =
  (* step of the deepest loop *)
  let deepest = ref None in
  Ir.walk_func
    (fun o ->
      if o.Ir.name = "affine.for" then
        deepest := Some (Attr.as_int (Attr.find_exn o.Ir.attrs "step")))
    f;
  !deepest

let test_unroll_preserves_structure () =
  let m = (K.gemm ()).K.build K.no_directives in
  let m' = Loop_unroll.run ~factor:4 m in
  Verifier.verify_module m';
  let f = List.hd m'.Ir.funcs in
  Alcotest.(check int) "still three loops" 3 (count_loops f);
  Alcotest.(check (option int)) "inner step scaled" (Some 4) (inner_step f)

let test_unroll_preserves_semantics () =
  List.iter
    (fun k ->
      List.iter
        (fun factor ->
          let plain =
            Flow.run_mhir k ~directives:K.no_directives
          in
          (* unrolled variant, interpreted at the mhir level *)
          let m = Loop_unroll.run ~factor (k.K.build K.no_directives) in
          Verifier.verify_module m;
          let bufs =
            List.mapi
              (fun i (_, shape) ->
                match Interp.random_fbuf ~seed:(i + 7) shape with
                | Interp.Buf src ->
                    let b =
                      Interp.alloc_buffer (Array.of_list shape) Types.F32
                    in
                    Array.blit src.Interp.fdata 0 b.Interp.fdata 0
                      (Array.length src.Interp.fdata);
                    Interp.Buf b
                | _ -> assert false)
              k.K.args
          in
          ignore (Interp.run_func m k.K.kname bufs);
          let unrolled =
            List.map
              (function
                | Interp.Buf b -> Array.copy b.Interp.fdata
                | _ -> assert false)
              bufs
          in
          List.iteri
            (fun i (a, b) ->
              Array.iteri
                (fun j av ->
                  if Float.abs (av -. b.(j)) > 1e-9 then
                    Alcotest.failf "%s x%d: diverges at %d[%d]" k.K.kname
                      factor i j)
                a)
            (List.combine plain unrolled))
        [ 2; 4 ])
    [ K.gemm (); K.fir (); K.jacobi2d () ]

let test_unroll_through_full_flow () =
  (* mhir-level unroll composes with the adaptor flow *)
  let k = K.gemm () in
  let m = Loop_unroll.run ~factor:2 (k.K.build K.pipelined) in
  let lm, _, _ = Flow_util.frontend_exn m in
  let r = Hls_backend.Estimate.synthesize ~top:"gemm" lm in
  Alcotest.(check bool) "synthesizes" true (r.Hls_backend.Estimate.latency > 0);
  (* and computes the right thing *)
  let reference = Flow.run_reference k in
  let got = Flow.run_llvm k lm in
  let err, issues = Flow.compare_outputs k ~what:"unrolled" reference got in
  if issues <> [] then Alcotest.fail (List.hd issues);
  Alcotest.(check bool) "error small" true (err < 1e-5)

let test_indivisible_trip_left_alone () =
  (* trip 16 with factor 3 does not divide: loop must be unchanged *)
  let m = (K.gemm ()).K.build K.no_directives in
  let m' = Loop_unroll.run ~factor:3 m in
  let f = List.hd m'.Ir.funcs in
  Alcotest.(check (option int)) "step unchanged" (Some 1) (inner_step f)

let test_only_innermost_unrolled () =
  let m = Loop_unroll.run ~factor:2 ((K.gemm ()).K.build K.no_directives) in
  let f = List.hd m.Ir.funcs in
  let steps = ref [] in
  Ir.walk_func
    (fun o ->
      if o.Ir.name = "affine.for" then
        steps := Attr.as_int (Attr.find_exn o.Ir.attrs "step") :: !steps)
    f;
  Alcotest.(check (list int)) "only one loop rescaled"
    [ 1; 1; 2 ]
    (List.sort compare !steps)

let test_unroll_grows_body () =
  let m0 = (K.fir ()).K.build K.no_directives in
  let m2 = Loop_unroll.run ~factor:2 m0 in
  let size m = Ir.op_count (List.hd m.Ir.funcs) in
  Alcotest.(check bool) "body duplicated" true (size m2 > size m0)

let suite =
  [
    Alcotest.test_case "preserves structure" `Quick test_unroll_preserves_structure;
    Alcotest.test_case "preserves semantics" `Quick test_unroll_preserves_semantics;
    Alcotest.test_case "composes with the flow" `Quick test_unroll_through_full_flow;
    Alcotest.test_case "indivisible trip left alone" `Quick test_indivisible_trip_left_alone;
    Alcotest.test_case "only innermost unrolled" `Quick test_only_innermost_unrolled;
    Alcotest.test_case "grows the body" `Quick test_unroll_grows_body;
  ]
