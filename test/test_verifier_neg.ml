(** Negative tests for the LLVM IR verifier: every malformed module
    must be rejected with a message naming the defect. *)

open Llvmir

let expect_reject ~(sub : string) (text : string) () =
  match Lverifier.verify_module (Lparser.parse_module text) with
  | () -> Alcotest.fail "verifier accepted malformed IR"
  | exception Support.Err.Compile_error e ->
      if not (Str_find.contains e.Support.Err.message sub) then
        Alcotest.failf "expected %S in message, got %S" sub
          e.Support.Err.message

(* %v is defined in one arm only; its use at the join is not dominated *)
let use_across_branch =
  {|define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i64 1, 2
  br label %j
b:
  br label %j
j:
  %w = add i64 %v, 1
  ret i64 %w
}|}

(* the phi names %b as an incoming block, but %b is not a predecessor *)
let phi_wrong_edge =
  {|define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %j
b:
  ret i64 0
j:
  %p = phi i64 [ 1, %a ], [ 2, %b ]
  ret i64 %p
}|}

(* a terminator in the middle of a block *)
let mid_block_terminator =
  {|define void @f() {
entry:
  br label %next
  br label %next
next:
  ret void
}|}

(* the same register defined twice *)
let double_def =
  {|define i64 @f() {
entry:
  %x = add i64 1, 2
  %x = add i64 3, 4
  ret i64 %x
}|}

(* phi in the entry block *)
let entry_phi =
  {|define i64 @f() {
entry:
  %p = phi i64 [ 0, %entry ]
  ret i64 %p
}|}

(* plain use of a register that is never defined *)
let undefined_use =
  {|define i64 @f() {
entry:
  %y = add i64 %nope, 1
  ret i64 %y
}|}

(* phi incoming value defined in a block that does not dominate the edge *)
let phi_bad_incoming =
  {|define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i64 1, 2
  br label %j
b:
  br label %j
j:
  %p = phi i64 [ 0, %a ], [ %v, %b ]
  ret i64 %p
}|}

let suite =
  [
    Alcotest.test_case "use across branches" `Quick
      (expect_reject ~sub:"not dominated" use_across_branch);
    Alcotest.test_case "phi wrong incoming edge" `Quick
      (expect_reject ~sub:"not a predecessor" phi_wrong_edge);
    Alcotest.test_case "mid-block terminator" `Quick
      (expect_reject ~sub:"middle" mid_block_terminator);
    Alcotest.test_case "double definition" `Quick
      (expect_reject ~sub:"more than once" double_def);
    Alcotest.test_case "phi in entry" `Quick
      (expect_reject ~sub:"phi in entry" entry_phi);
    Alcotest.test_case "undefined register" `Quick
      (expect_reject ~sub:"undefined register" undefined_use);
    Alcotest.test_case "phi incoming not dominating" `Quick
      (expect_reject ~sub:"does not dominate" phi_bad_incoming);
  ]
