(** Shared test shim over the sealed flow API: the tests are a process
    boundary, so front-end diagnostics escalate to
    {!Support.Diag.Failed}. *)

let frontend_exn ?pipeline ?trace m =
  match Flow.direct_ir_frontend ?pipeline ?trace m with
  | Ok r -> r
  | Error ds -> raise (Support.Diag.Failed ds)
