(** Tests for the static-analysis layer behind the parallel pipeline:

    - directed and QCheck-property tests of the {!Llvmir.Alias}
      oracle (symmetry, reflexivity, refinement of the base-region
      verdict, alloca/global/param separation);
    - a golden test of {!Llvmir.Effects} summaries on a
      multi-function module with a call chain and a global;
    - {!Llvmir.Parsafe} positive and negative verdicts, including the
      JSON rendering and the all-kernels-safe sweep on adapted IR;
    - byte-identity of {!Llvmir.Pass.run_pipeline_parallel} against
      the sequential pipeline on the synthetic many-function module,
      and its fallback on a conflicting module. *)

open Llvmir
module Sym = Support.Interner
module K = Workloads.Kernels
module P = Pass

let parse text =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  m

let parse_fn text = List.hd (parse text).Lmodule.funcs

(* ------------------------------------------------------------------ *)
(* Alias: directed cases                                              *)
(* ------------------------------------------------------------------ *)

(* every root kind in one function: two array params, an alloca, a
   global, a phi-derived (unknown) pointer, and GEPs at known deltas *)
let roots_fn =
  {|@G = global i64 0
define void @k([64 x float]* %A, [64 x float]* %B, i64 %i, i1 %c) {
entry:
  %loc = alloca i64
  %pa = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %i
  %im1 = sub i64 %i, 1
  %pa1 = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %im1
  %pa2 = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %i
  %pb = getelementptr inbounds [64 x float], [64 x float]* %B, i64 0, i64 %i
  br i1 %c, label %l, label %r
l:
  br label %join
r:
  br label %join
join:
  %phi = phi [64 x float]* [ %A, %l ], [ %B, %r ]
  %pp = getelementptr inbounds [64 x float], [64 x float]* %phi, i64 0, i64 %i
  %v = load float, float* %pa
  store float %v, float* %pb
  ret void
}|}

let with_roots (f : Lmodule.func -> Findex.t -> unit) =
  let m = parse roots_fn in
  let fn = List.hd m.Lmodule.funcs in
  f fn (Findex.build fn)

let reg idx name =
  ignore idx;
  Lvalue.Reg (Sym.intern name, Ltype.Ptr (Some Ltype.Float))

let check_verdict msg expected actual =
  Alcotest.(check string) msg
    (Alias.verdict_to_string expected)
    (Alias.verdict_to_string actual)

let test_alias_directed () =
  with_roots (fun _ idx ->
      let p n = reg idx n in
      (* distinct params never alias (HLS interface contract) *)
      check_verdict "A vs B params" Alias.No_alias
        (Alias.alias idx (p "pa") (p "pb"));
      (* alloca vs global: distinct known roots *)
      check_verdict "alloca vs global" Alias.No_alias
        (Alias.alias idx
           (Lvalue.Reg (Sym.intern "loc", Ltype.Ptr (Some Ltype.I64)))
           (Lvalue.Global (Sym.intern "G", Ltype.Ptr (Some Ltype.I64))));
      (* same array, same subscript via distinct GEPs: must-alias *)
      check_verdict "A[i] vs A[i] (two geps)" Alias.Must_alias
        (Alias.alias idx (p "pa") (p "pa2"));
      (* same array, constant-delta subscripts: provably distinct
         addresses at one instant *)
      check_verdict "A[i] vs A[i-1] point" Alias.No_alias
        (Alias.alias idx (p "pa") (p "pa1"));
      (* ...but the base regions must still collide for dependence
         analysis: base_alias answers the region question *)
      check_verdict "A[i] vs A[i-1] base" Alias.Must_alias
        (Alias.base_alias idx (p "pa") (p "pa1"));
      (* phi-derived pointer: unknown root, may alias either array *)
      check_verdict "phi vs A" Alias.May_alias
        (Alias.alias idx (p "pp") (p "pa"));
      check_verdict "phi vs B base" Alias.May_alias
        (Alias.base_alias idx (p "pp") (p "pb")))

let test_alias_same_reg () =
  with_roots (fun _ idx ->
      check_verdict "a pointer must-aliases itself" Alias.Must_alias
        (Alias.alias idx (reg idx "pp") (reg idx "pp")))

(* ------------------------------------------------------------------ *)
(* Alias: QCheck properties on random kernels                         *)
(* ------------------------------------------------------------------ *)

let exception_to_failure name f =
  try f ()
  with e -> QCheck.Test.fail_reportf "%s: %s" name (Printexc.to_string e)

let lowered_of_kernel (rk : Test_random.rkernel) : Lmodule.t =
  Lowering.Lower.lower_module
    (Mhir.Canonicalize.run (Test_random.build_module rk))

(** All load/store pointer operands of a function. *)
let pointers_of (f : Lmodule.func) : Lvalue.t list =
  List.rev
    (Lmodule.fold_insts
       (fun acc (i : Linstr.t) ->
         match i.Linstr.op with
         | Linstr.Load (_, p) | Linstr.Store (_, p) -> p :: acc
         | _ -> acc)
       [] f)

let check_pair_invariants (idx : Findex.t) p q =
  let v_pq = Alias.alias idx p q in
  let v_qp = Alias.alias idx q p in
  let b_pq = Alias.base_alias idx p q in
  let b_qp = Alias.base_alias idx q p in
  (* both oracles are symmetric *)
  if v_pq <> v_qp then
    QCheck.Test.fail_reportf "alias not symmetric: %s vs %s"
      (Alias.verdict_to_string v_pq)
      (Alias.verdict_to_string v_qp);
  if b_pq <> b_qp then
    QCheck.Test.fail_reportf "base_alias not symmetric: %s vs %s"
      (Alias.verdict_to_string b_pq)
      (Alias.verdict_to_string b_qp);
  (* point-alias refines the base verdict: disjoint regions can hold
     no common address, and a must-aliased address needs a shared
     region *)
  if b_pq = Alias.No_alias && v_pq <> Alias.No_alias then
    QCheck.Test.fail_reportf "base no-alias but point %s"
      (Alias.verdict_to_string v_pq);
  if v_pq = Alias.Must_alias && b_pq <> Alias.Must_alias then
    QCheck.Test.fail_reportf "point must-alias but base %s"
      (Alias.verdict_to_string b_pq)

let prop_alias_invariants =
  QCheck.Test.make ~name:"alias: symmetry + base refinement" ~count:20
    Test_random.arb_kernel (fun rk ->
      exception_to_failure "alias invariants" (fun () ->
          let lm = lowered_of_kernel rk in
          List.iter
            (fun f ->
              let idx = Findex.build f in
              let ptrs = pointers_of f in
              List.iter
                (fun p ->
                  if Alias.alias idx p p <> Alias.Must_alias then
                    QCheck.Test.fail_reportf "p not must-alias with itself";
                  List.iter (check_pair_invariants idx p) ptrs)
                ptrs)
            lm.Lmodule.funcs;
          true))

(* ------------------------------------------------------------------ *)
(* Effects: golden summary                                            *)
(* ------------------------------------------------------------------ *)

let effects_module =
  {|@g = global i64 0
declare void @mystery(i64)
define void @helper([64 x float]* %A, [64 x float]* %B) {
entry:
  %p = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 1
  %v = load float, float* %p
  %q = getelementptr inbounds [64 x float], [64 x float]* %B, i64 0, i64 2
  store float %v, float* %q
  ret void
}
define void @top([64 x float]* %X, [64 x float]* %Y) {
entry:
  call void @helper([64 x float]* %X, [64 x float]* %Y)
  %gv = load i64, i64* @g
  store i64 %gv, i64* @g
  ret void
}
define void @open_fn(i64 %n) {
entry:
  call void @mystery(i64 %n)
  ret void
}|}

let test_effects_golden () =
  let m = parse effects_module in
  let eff = Effects.summarize m in
  Alcotest.(check string)
    "module effect summary"
    "helper: params [A:read B:write] globals [] unknown []\n\
     top: params [X:read Y:write] globals [g:readwrite] unknown []\n\
     open_fn: params [] globals [] unknown [mystery]\n"
    (Effects.to_string m eff)

let test_effects_closed () =
  let m = parse effects_module in
  let eff = Effects.summarize m in
  let fp name = Option.get (Effects.footprint eff name) in
  Alcotest.(check bool) "helper closed" true (Effects.closed (fp "helper"));
  Alcotest.(check bool) "top closed (call chain attributed)" true
    (Effects.closed (fp "top"));
  Alcotest.(check bool) "open_fn open" false (Effects.closed (fp "open_fn"))

(** The analysis manager caches the summary per module value and keeps
    it across Effects-preserving passes. *)
let test_effects_cached () =
  let m = parse effects_module in
  let am = Analysis.create () in
  let e1 = Analysis.effects ~am m in
  let e2 = Analysis.effects ~am m in
  Alcotest.(check bool) "second query hits the cache" true (e1 == e2)

(* ------------------------------------------------------------------ *)
(* Parsafe                                                            *)
(* ------------------------------------------------------------------ *)

let test_parsafe_safe () =
  let m = Mhls_driver.Synth.many_kernels ~n:6 in
  Alcotest.(check string) "independent kernels are safe" "safe"
    (Parsafe.verdict_to_string (Parsafe.check m))

let test_parsafe_single_function () =
  let m = parse roots_fn in
  Alcotest.(check string) "single function always safe" "safe"
    (Parsafe.verdict_to_string (Parsafe.check m))

let test_parsafe_shared_global () =
  let m = Mhls_driver.Synth.shared_global_writers () in
  match Parsafe.check m with
  | Parsafe.Safe -> Alcotest.fail "shared-global writers must be unsafe"
  | Parsafe.Unsafe cs ->
      Alcotest.(check bool) "write-write conflict on @acc reported" true
        (List.exists
           (function
             | Parsafe.Global_write_write (_, _, "acc") -> true
             | _ -> false)
           cs);
      Alcotest.(check string) "json verdict"
        "{\"verdict\": \"unsafe\", \"conflicts\": [{\"kind\": \
         \"write-write\", \"a\": \"bump_a\", \"b\": \"bump_b\", \"global\": \
         \"acc\"}]}"
        (Parsafe.to_json (Parsafe.Unsafe cs))

let test_parsafe_unknown_effects () =
  let m = parse effects_module in
  match Parsafe.check m with
  | Parsafe.Safe -> Alcotest.fail "open footprint must be unsafe"
  | Parsafe.Unsafe cs ->
      Alcotest.(check bool) "unknown-effects conflict for open_fn" true
        (List.exists
           (function
             | Parsafe.Unknown_effects ("open_fn", _) -> true
             | _ -> false)
           cs)

(** Every built-in kernel, adapted for HLS, is statically race-free —
    the property that lets the managed pipeline parallelize them. *)
let test_parsafe_all_kernels_safe () =
  List.iter
    (fun (k : K.kernel) ->
      match Flow.direct_ir_frontend (k.K.build K.no_directives) with
      | Error ds -> Alcotest.fail (Support.Diag.render ds)
      | Ok (lm, _, _) ->
          Alcotest.(check string)
            (Printf.sprintf "%s adapted IR is parallel-safe" k.K.kname)
            "safe"
            (Parsafe.verdict_to_string (Parsafe.check lm)))
    (K.all ())

(* ------------------------------------------------------------------ *)
(* Parallel pipeline                                                  *)
(* ------------------------------------------------------------------ *)

let test_split_func_local () =
  let prologue, tail = P.split_func_local P.default_pipeline in
  Alcotest.(check (list string))
    "prologue is the module-level inline"
    [ "inline" ]
    (List.map (fun (p : P.pass) -> p.P.name) prologue);
  Alcotest.(check int) "everything after inline is function-local" 8
    (List.length tail)

let print m = Lprinter.module_to_string m

let test_parallel_byte_identical () =
  let m = Mhls_driver.Synth.many_kernels ~n:30 in
  let seq, _ = P.run_pipeline P.default_pipeline m in
  List.iter
    (fun jobs ->
      let par, _, status =
        P.run_pipeline_parallel
          ~fanout:(Mhls_driver.Pool.fanout ~jobs)
          P.default_pipeline m
      in
      (match (jobs, status) with
      | 1, P.Fell_back _ -> ()
      | 1, P.Ran_parallel _ -> Alcotest.fail "jobs=1 must not fan out"
      | _, P.Ran_parallel n -> Alcotest.(check int) "all functions fanned" 30 n
      | _, P.Fell_back why -> Alcotest.fail ("unexpected fallback: " ^ why));
      Alcotest.(check string)
        (Printf.sprintf "parallel output identical at jobs=%d" jobs)
        (print seq) (print par))
    [ 1; 4 ]

let test_parallel_falls_back_on_conflict () =
  let m = Mhls_driver.Synth.shared_global_writers () in
  let seq, _ = P.run_pipeline P.default_pipeline m in
  let par, _, status =
    P.run_pipeline_parallel
      ~fanout:(Mhls_driver.Pool.fanout ~jobs:4)
      P.default_pipeline m
  in
  (match status with
  | P.Fell_back why ->
      Alcotest.(check bool) "reason names the conflicting global" true
        (Str_find.contains why "@acc")
  | P.Ran_parallel _ -> Alcotest.fail "conflicting module must fall back");
  Alcotest.(check string) "fallback output identical" (print seq) (print par)

let test_parallel_inline_fanout () =
  (* the library's own sequential stand-in also falls back (jobs = 1) *)
  let m = Mhls_driver.Synth.many_kernels ~n:4 in
  let _, _, status =
    P.run_pipeline_parallel ~fanout:P.inline_fanout P.default_pipeline m
  in
  match status with
  | P.Fell_back _ -> ()
  | P.Ran_parallel _ -> Alcotest.fail "inline fanout must stay sequential"

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "alias: directed root/GEP cases" `Quick
      test_alias_directed;
    Alcotest.test_case "alias: same register" `Quick test_alias_same_reg;
    QCheck_alcotest.to_alcotest prop_alias_invariants;
    Alcotest.test_case "effects: golden summary" `Quick test_effects_golden;
    Alcotest.test_case "effects: closedness" `Quick test_effects_closed;
    Alcotest.test_case "effects: manager cache" `Quick test_effects_cached;
    Alcotest.test_case "parsafe: independent kernels safe" `Quick
      test_parsafe_safe;
    Alcotest.test_case "parsafe: single function safe" `Quick
      test_parsafe_single_function;
    Alcotest.test_case "parsafe: shared-global writers unsafe" `Quick
      test_parsafe_shared_global;
    Alcotest.test_case "parsafe: open footprint unsafe" `Quick
      test_parsafe_unknown_effects;
    Alcotest.test_case "parsafe: all kernels safe (adapted IR)" `Quick
      test_parsafe_all_kernels_safe;
    Alcotest.test_case "pipeline: prologue/tail split" `Quick
      test_split_func_local;
    Alcotest.test_case "pipeline: parallel byte-identical" `Quick
      test_parallel_byte_identical;
    Alcotest.test_case "pipeline: falls back on conflict" `Quick
      test_parallel_falls_back_on_conflict;
    Alcotest.test_case "pipeline: inline fanout sequential" `Quick
      test_parallel_inline_fanout;
  ]
