(** Tests for the {!Hls_backend.Backend} signature: golden static
    reports (byte-exact), parity between the legacy façade and the
    signature-selected static backend on every built-in kernel,
    directed dynamic (elastic) behaviour — token round-trip II and
    FIFO costing — and an exhaustive DSE check that the backend-axis
    frontier weakly dominates the static-only frontier. *)

module B = Hls_backend.Backend
module E = Hls_backend.Estimate
module K = Workloads.Kernels
module O = Hls_backend.Op_model

let frontend ?(directives = K.pipelined) (k : K.kernel) =
  let lm, _, _ = Flow_util.frontend_exn (k.K.build directives) in
  lm

let render_static (k : K.kernel) =
  Hls_backend.Report.render (E.synthesize ~top:k.K.kname (frontend k))

(* ------------------------------------------------------------------ *)
(* Golden static reports                                              *)
(* ------------------------------------------------------------------ *)

(* These pin the exact bytes of the default `mhlsc synth` report, so a
   refactor of the static backend behind the signature cannot drift
   the output silently.  Update only with an intentional QoR change. *)

let golden_gemm =
  {golden|== Synthesis report for 'gemm' (clock 10.0 ns, 100 MHz) ==
  Latency: 18740 cycles (187.400 us)   Interval: 18741 cycles
+-------------------+------+--------+----------+-----------+----+--------+-------+
| loop              | trip | unroll | iter lat | pipelined | II | RecMII | total |
+-------------------+------+--------+----------+-----------+----+--------+-------+
| %loop1.header     |   16 |      1 |     1170 | no        |  - |      1 | 18738 |
|   %loop2.header   |   16 |      1 |       72 | no        |  - |      1 |  1170 |
|     %loop3.header |   16 |      1 |        9 | yes       |  4 |      4 |    71 |
+-------------------+------+--------+----------+-----------+----+--------+-------+
  Resources: BRAM_18K=3 DSP48=5 FF=1050 LUT=1058
  array %A          dims=16x16 (interface bram)
  array %B          dims=16x16 (interface bram)
  array %C          dims=16x16 (interface bram)
  WARNING: loop %loop3.header: target II=1 not met, achieved II=4 (RecMII=4, ResMII=1)
|golden}

let golden_fir =
  {golden|== Synthesis report for 'fir' (clock 10.0 ns, 100 MHz) ==
  Latency: 2341 cycles (23.410 us)   Interval: 2342 cycles
+-----------------+------+--------+----------+-----------+----+--------+-------+
| loop            | trip | unroll | iter lat | pipelined | II | RecMII | total |
+-----------------+------+--------+----------+-----------+----+--------+-------+
| %loop1.header   |   57 |      1 |       40 | no        |  - |      1 |  2339 |
|   %loop2.header |    8 |      1 |        9 | yes       |  4 |      4 |    39 |
+-----------------+------+--------+----------+-----------+----+--------+-------+
  Resources: BRAM_18K=3 DSP48=5 FF=950 LUT=1042
  array %x          dims=64 (interface bram)
  array %h          dims=8 (interface bram)
  array %y          dims=57 (interface bram)
  WARNING: loop %loop2.header: target II=1 not met, achieved II=4 (RecMII=4, ResMII=1)
|golden}

let find_kernel name =
  List.find (fun k -> k.K.kname = name) (K.all ())

let test_golden_gemm () =
  Alcotest.(check string)
    "gemm report bytes" golden_gemm
    (render_static (find_kernel "gemm"))

let test_golden_fir () =
  Alcotest.(check string)
    "fir report bytes" golden_fir
    (render_static (find_kernel "fir"))

(* ------------------------------------------------------------------ *)
(* Static parity: façade ≡ module ≡ signature ≡ dispatcher            *)
(* ------------------------------------------------------------------ *)

let test_static_parity () =
  List.iter
    (fun k ->
      let lm = frontend k in
      let top = k.K.kname in
      let legacy = Hls_backend.Report.render (E.synthesize ~top lm) in
      let direct =
        Hls_backend.Report.render (Hls_backend.Backend_static.synthesize ~top lm)
      in
      let via_sig =
        let (module S : B.S) = (module Hls_backend.Backend_static) in
        Hls_backend.Report.render (S.synthesize ~top lm)
      in
      let dispatched =
        Hls_backend.Report.render (B.synthesize ~sched:B.Static ~top lm)
      in
      Alcotest.(check string) (top ^ " façade = module") legacy direct;
      Alcotest.(check string) (top ^ " façade = signature") legacy via_sig;
      Alcotest.(check string) (top ^ " façade = dispatcher") legacy dispatched)
    (K.all ())

let test_of_sched_roundtrip () =
  List.iter
    (fun s ->
      let (module M : B.S) = B.of_sched s in
      Alcotest.(check (option string))
        ("of_sched " ^ B.sched_name s)
        (Some (B.sched_name s))
        (Option.map B.sched_name (B.sched_of_name M.name)))
    B.all_scheds;
  Alcotest.(check bool) "unknown sched name" true (B.sched_of_name "vliw" = None)

(* ------------------------------------------------------------------ *)
(* Dynamic (elastic) backend: directed cases                          *)
(* ------------------------------------------------------------------ *)

(** Every built-in kernel schedules under the elastic backend and
    produces a complete, renderable report. *)
let test_dynamic_complete () =
  List.iter
    (fun k ->
      let lm = frontend k in
      let r = B.synthesize ~sched:B.Dynamic ~top:k.K.kname lm in
      Alcotest.(check bool) (k.K.kname ^ " latency positive") true (r.E.latency > 0);
      Alcotest.(check bool)
        (k.K.kname ^ " elastic fabric costed")
        true
        (r.E.resources.E.lut > 0 && r.E.resources.E.ff > 0);
      Alcotest.(check bool)
        (k.K.kname ^ " report renders")
        true
        (String.length (Hls_backend.Report.render r) > 0))
    (K.all ())

(** On gemm's loop-carried reduction the dynamic II comes from token
    round-trip time, which cannot beat the dependence recurrence the
    static scheduler measures: innermost RecMII must not shrink. *)
let test_dynamic_token_rtt_ii () =
  let k = find_kernel "gemm" in
  let lm = frontend k in
  let innermost (r : E.report) =
    List.fold_left
      (fun acc (l : E.loop_report) ->
        match acc with
        | Some (best : E.loop_report) when best.E.depth >= l.E.depth -> acc
        | _ -> Some l)
      None r.E.loops
    |> Option.get
  in
  let s = innermost (B.synthesize ~sched:B.Static ~top:k.K.kname lm) in
  let d = innermost (B.synthesize ~sched:B.Dynamic ~top:k.K.kname lm) in
  Alcotest.(check bool)
    "token RTT >= static RecMII" true
    (d.E.rec_mii >= s.E.rec_mii);
  Alcotest.(check bool)
    "reduction recurrence visible to elastic model" true (d.E.rec_mii > 1)

(** FIFO channel costing: BRAM monotone in depth and width, fabric
    (LUT/FF) strictly growing while the channel stays in distributed
    RAM, and storage moving to 18Kb BRAM past the capacity threshold. *)
let test_fifo_cost () =
  let bram ~depth ~bits =
    let b, _, _ = O.fifo_cost ~depth ~bits in
    b
  in
  (* BRAM monotone in depth at fixed width *)
  let rec check_depth prev d =
    if d <= 4096 then begin
      let b = bram ~depth:d ~bits:32 in
      Alcotest.(check bool)
        (Printf.sprintf "bram monotone depth=%d" d)
        true (b >= prev);
      check_depth b (d * 2)
    end
  in
  check_depth (bram ~depth:1 ~bits:32) 2;
  (* BRAM monotone in width at fixed depth *)
  Alcotest.(check bool) "bram monotone in bits" true
    (bram ~depth:32 ~bits:64 >= bram ~depth:32 ~bits:32);
  (* below the threshold storage is fabric: LUT/FF strictly increase *)
  let _, lut8, ff8 = O.fifo_cost ~depth:8 ~bits:32 in
  let _, lut16, ff16 = O.fifo_cost ~depth:16 ~bits:32 in
  Alcotest.(check int) "shallow fifo is fabric-only" 0 (bram ~depth:8 ~bits:32);
  Alcotest.(check bool) "fabric LUT grows with depth" true (lut16 > lut8);
  Alcotest.(check bool) "fabric FF grows with depth" true (ff16 > ff8);
  (* past the threshold the storage is BRAM blocks, ceil(capacity/18Kb) *)
  let over = (2 * O.fifo_bram_threshold_bits) / 32 in
  Alcotest.(check int) "threshold crossing allocates BRAM" 1
    (bram ~depth:over ~bits:32);
  Alcotest.(check int) "deep channel: capacity / 18Kb blocks" 2
    (bram ~depth:1024 ~bits:32)

(** The default elastic channel geometry stays below the BRAM
    threshold, so per-edge buffering costs fabric, not block RAM. *)
let test_default_channel_geometry () =
  let module D = Hls_backend.Backend_dynamic in
  let b, lut, ff = O.fifo_cost ~depth:D.channel_depth ~bits:D.channel_bits in
  Alcotest.(check int) "default channel is fabric" 0 b;
  Alcotest.(check bool) "default channel has cost" true (lut > 0 && ff > 0)

(* ------------------------------------------------------------------ *)
(* DSE: the backend axis can only improve the frontier                *)
(* ------------------------------------------------------------------ *)

module Sp = Mhls_dse.Space
module Se = Mhls_dse.Search
module Pa = Mhls_dse.Pareto

(** Exhaustively evaluate fir over the two-backend space, then check
    that the Pareto frontier of the full space weakly dominates the
    frontier of its static-only subspace — adding an axis never makes
    the frontier worse. *)
let test_dse_backend_axis_dominates () =
  let k = find_kernel "fir" in
  let sp = Sp.of_kernel ~scheds:B.all_scheds k in
  let eval (c : Sp.config) =
    match Flow_util.frontend_exn (k.K.build (Sp.to_directives sp c)) with
    | lm, _, _ -> (
        try
          let r = B.synthesize ~sched:c.Sp.c_sched ~top:k.K.kname lm in
          Some (Sp.describe c, c.Sp.c_sched, Se.objectives_of_report r)
        with E.Rejected _ -> None)
    | exception Support.Diag.Failed _ -> None
  in
  let points = List.filter_map eval (Sp.enumerate sp) in
  Alcotest.(check bool) "space is feasible" true (List.length points > 100);
  let archive_of sel =
    List.fold_left
      (fun a (label, sched, obj) ->
        if sel sched then fst (Pa.insert a (Pa.entry ~key:label ~obj ()))
        else a)
      Pa.empty points
  in
  let static_front =
    Pa.frontier (archive_of (fun s -> s = B.Static))
  in
  let both_front = Pa.frontier (archive_of (fun _ -> true)) in
  Alcotest.(check bool) "static frontier nonempty" true (static_front <> []);
  let weakly_covered (s : unit Pa.entry) =
    List.exists
      (fun (b : unit Pa.entry) ->
        Array.for_all2 (fun bx sx -> bx <= sx) b.Pa.e_obj s.Pa.e_obj)
      both_front
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("weakly dominated: " ^ s.Pa.e_key)
        true (weakly_covered s))
    static_front

(** The search API threads the axis: a both-backend search over fir
    explores a strictly larger space and reports dynamic labels. *)
let test_search_backend_axis () =
  let k = find_kernel "fir" in
  let static_space = Sp.of_kernel k in
  let both_space = Sp.of_kernel ~scheds:B.all_scheds k in
  Alcotest.(check int) "axis doubles the space"
    (2 * List.length (Sp.enumerate static_space))
    (List.length (Sp.enumerate both_space));
  let params = { Se.default_params with Se.max_evals = 96 } in
  let o = Se.search ~params ~scheds:B.all_scheds k in
  Alcotest.(check bool) "frontier nonempty" true (o.Se.o_frontier <> []);
  (* labels and configs agree on the axis: "-dyn" iff dynamic *)
  List.iter
    (fun (p : Se.point) ->
      let is_dyn = p.Se.pt_config.Sp.c_sched = B.Dynamic in
      let has_suffix =
        let l = p.Se.pt_label and s = "-dyn" in
        String.length l >= 4 && String.sub l (String.length l - 4) 4 = s
      in
      Alcotest.(check bool) ("label axis tag: " ^ p.Se.pt_label) is_dyn
        has_suffix)
    o.Se.o_frontier;
  Alcotest.(check bool) "dynamic point reaches the frontier" true
    (List.exists
       (fun (p : Se.point) -> p.Se.pt_config.Sp.c_sched = B.Dynamic)
       o.Se.o_frontier)

let suite =
  [
    Alcotest.test_case "golden gemm report" `Quick test_golden_gemm;
    Alcotest.test_case "golden fir report" `Quick test_golden_fir;
    Alcotest.test_case "static parity (14 kernels)" `Quick test_static_parity;
    Alcotest.test_case "of_sched roundtrip" `Quick test_of_sched_roundtrip;
    Alcotest.test_case "dynamic complete (14 kernels)" `Quick
      test_dynamic_complete;
    Alcotest.test_case "dynamic token-RTT II" `Quick test_dynamic_token_rtt_ii;
    Alcotest.test_case "fifo cost model" `Quick test_fifo_cost;
    Alcotest.test_case "default channel geometry" `Quick
      test_default_channel_geometry;
    Alcotest.test_case "backend axis weakly dominates" `Quick
      test_dse_backend_axis_dominates;
    Alcotest.test_case "search over backend axis" `Quick
      test_search_backend_axis;
  ]
