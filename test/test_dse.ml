(** Tests for the Pareto-archive design-space exploration engine:
    dominance/frontier laws (QCheck), metadata-derived search spaces,
    budget filtering, early stop, worker-count determinism, and the
    weak-domination guarantee over the legacy fixed grid. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module P = Mhls_dse.Pareto
module Sp = Mhls_dse.Space
module S = Mhls_dse.Search
module J = Mhls_dse.Dse_json
module D = Mhls_driver.Driver

(* one result cache shared by the whole suite: repeated searches of the
   same kernel are served from disk, which also exercises cross-run
   cache reuse *)
let cache_dir =
  let d = Filename.temp_file "mhlsc-test-dse" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

(* ------------------------------------------------------------------ *)
(* Pareto laws (QCheck)                                               *)
(* ------------------------------------------------------------------ *)

let arb_obj =
  QCheck.make
    ~print:(fun a ->
      "[|"
      ^ String.concat ";" (Array.to_list (Array.map string_of_int a))
      ^ "|]")
    QCheck.Gen.(array_size (return 4) (int_bound 10))

let prop_dominates_irreflexive =
  QCheck.Test.make ~name:"dominates is irreflexive" ~count:200 arb_obj
    (fun a -> not (P.dominates a a))

let prop_dominates_antisymmetric =
  QCheck.Test.make ~name:"dominates is antisymmetric" ~count:500
    (QCheck.pair arb_obj arb_obj) (fun (a, b) ->
      not (P.dominates a b && P.dominates b a))

let prop_frontier_is_antichain =
  QCheck.Test.make ~name:"frontier is an antichain covering all inserts"
    ~count:200
    (QCheck.list_of_size QCheck.Gen.(int_range 0 30) arb_obj)
    (fun objs ->
      let entries =
        List.mapi
          (fun i o -> P.entry ~key:(Printf.sprintf "p%03d" i) ~obj:o ())
          objs
      in
      let t, _ = P.insert_all P.empty entries in
      let f = P.frontier t in
      P.is_antichain f
      && List.for_all
           (fun o ->
             List.exists
               (fun (e : unit P.entry) ->
                 e.P.e_obj = o || P.dominates e.P.e_obj o)
               f)
           objs)

let test_dominates_dimension_mismatch () =
  Alcotest.check_raises "dimension mismatch raises"
    (Invalid_argument "Pareto.dominates: dimension mismatch") (fun () ->
      ignore (P.dominates [| 1 |] [| 1; 2 |]))

let test_insert_dedups_keys_and_ties () =
  let e1 = P.entry ~key:"a" ~obj:[| 1; 1 |] () in
  let t, ch1 = P.insert P.empty e1 in
  Alcotest.(check bool) "first insert changes" true ch1;
  let _, ch2 = P.insert t (P.entry ~key:"a" ~obj:[| 0; 0 |] ()) in
  Alcotest.(check bool) "duplicate key is a no-op" false ch2;
  let t3, ch3 = P.insert t (P.entry ~key:"b" ~obj:[| 1; 1 |] ()) in
  Alcotest.(check bool) "objective tie is a no-op" false ch3;
  Alcotest.(check int) "tie kept one representative" 1 (P.size t3)

(* ------------------------------------------------------------------ *)
(* Space derivation                                                   *)
(* ------------------------------------------------------------------ *)

let test_space_gemm_axes () =
  let sp = Sp.of_kernel (K.gemm ()) in
  let axis name =
    match
      List.find_opt (fun a -> a.Sp.pa_array = name) sp.Sp.sp_partitions
    with
    | Some a -> a
    | None -> Alcotest.fail ("no partition axis for " ^ name)
  in
  (* gemm's innermost loop indexes A's columns and B's rows *)
  Alcotest.(check int) "A partitioned on dim 2" 2 (axis "A").Sp.pa_dim;
  Alcotest.(check int) "B partitioned on dim 1" 1 (axis "B").Sp.pa_dim;
  Alcotest.(check bool) "factor ladders start at 1 (off)" true
    (List.for_all
       (fun a -> List.hd a.Sp.pa_factors = 1)
       sp.Sp.sp_partitions);
  Alcotest.(check int) "gemm space has 384 canonical points" 384
    (Sp.size sp)

let test_space_at_least_10x_legacy_grid () =
  List.iter
    (fun k ->
      let sp = Sp.of_kernel k in
      Alcotest.(check bool)
        (Printf.sprintf "%s space >= 80 (10x the old 8-point grid), got %d"
           k.K.kname (Sp.size sp))
        true
        (Sp.size sp >= 80))
    (K.all ())

let test_describe_injective_on_space () =
  let sp = Sp.of_kernel (K.gemm ()) in
  let labels = List.map Sp.describe (Sp.enumerate sp) in
  Alcotest.(check int) "describe is injective over the space"
    (List.length labels)
    (List.length (List.sort_uniq compare labels))

let test_seeds_are_in_space () =
  List.iter
    (fun k ->
      let sp = Sp.of_kernel k in
      let space = List.map Sp.describe (Sp.enumerate sp) in
      let seeds = Sp.seeds sp in
      Alcotest.(check bool)
        (k.K.kname ^ " has seeds") true (seeds <> []);
      Alcotest.(check bool)
        (k.K.kname ^ " seeds bounded by the legacy 8-grid") true
        (List.length seeds <= 8);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %s is in the space" k.K.kname
               (Sp.describe c))
            true
            (List.mem (Sp.describe c) space))
        seeds)
    (K.all ())

let test_neighbors_canonical () =
  let sp = Sp.of_kernel (K.gemm ()) in
  let space = List.map Sp.describe (Sp.enumerate sp) in
  List.iter
    (fun c ->
      let ns = Sp.neighbors sp c in
      Alcotest.(check bool) "self excluded" false
        (List.mem (Sp.describe c) (List.map Sp.describe ns));
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Sp.describe n ^ " neighbor is canonical and in space") true
            (Sp.describe (Sp.canonical n) = Sp.describe n
            && List.mem (Sp.describe n) space))
        ns)
    (Sp.seeds sp)

(* ------------------------------------------------------------------ *)
(* Search                                                             *)
(* ------------------------------------------------------------------ *)

let objectives (p : S.point) = S.objectives_of_report p.S.pt_report

(* a <= b on every axis: weak (Pareto) domination *)
let weakly_le a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
  !ok

let test_search_gemm_frontier () =
  let o = S.search ~cache_dir ~jobs:2 (K.gemm ()) in
  Alcotest.(check bool) "frontier non-empty" true (o.S.o_frontier <> []);
  Alcotest.(check bool) "respects eval cap" true
    (o.S.o_evaluated <= S.default_params.S.max_evals);
  Alcotest.(check bool) "fewer full evals than exhaustive" true
    (o.S.o_full_evals < Sp.size o.S.o_space);
  (* the frontier is an antichain, sorted by label *)
  let entries =
    List.map
      (fun p -> P.entry ~key:p.S.pt_label ~obj:(objectives p) ())
      o.S.o_frontier
  in
  Alcotest.(check bool) "frontier is an antichain" true
    (P.is_antichain entries);
  Alcotest.(check bool) "frontier sorted by label" true
    (let ls = List.map (fun p -> p.S.pt_label) o.S.o_frontier in
     ls = List.sort compare ls);
  Alcotest.(check int) "nothing infeasible without a budget" 0
    (List.length o.S.o_infeasible)

let test_search_improves_over_baseline () =
  let o = S.search ~cache_dir ~jobs:2 (K.gemm ()) in
  let sp = o.S.o_space in
  let baseline =
    let b =
      D.run_batch ~cache_dir
        [
          D.job ~clock_ns:10.0 ~kernel:"gemm"
            (Sp.to_directives sp
               (Sp.canonical
                  {
                    Sp.c_strategy = K.Inner;
                    c_sched = Hls_backend.Backend.Static;
                    c_ii = 0;
                    c_unroll = 1;
                    c_parts = [];
                  }));
        ]
    in
    match (List.hd b.D.outcomes).D.o_qor with
    | Ok r -> r
    | Error _ -> Alcotest.fail "baseline infeasible"
  in
  match S.best o with
  | Some best ->
      Alcotest.(check bool) "best is at least 10x the baseline" true
        (baseline.E.latency / best.S.pt_report.E.latency >= 10)
  | None -> Alcotest.fail "no best point"

let test_budget_constrains () =
  let unconstrained = S.search ~cache_dir ~jobs:2 (K.gemm ()) in
  let params =
    {
      S.default_params with
      S.budget = { S.no_budget with S.b_max_dsp = Some 10 };
    }
  in
  let tight = S.search ~params ~cache_dir ~jobs:2 (K.gemm ()) in
  Alcotest.(check bool) "budget frontier non-empty" true
    (tight.S.o_frontier <> []);
  Alcotest.(check bool) "some points dropped by the budget" true
    (tight.S.o_over_budget > 0);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.S.pt_label ^ " within budget") true
        (p.S.pt_report.E.resources.E.dsp <= 10))
    tight.S.o_frontier;
  match (S.best unconstrained, S.best tight) with
  | Some u, Some t ->
      Alcotest.(check bool) "constrained best is slower-or-equal" true
        (t.S.pt_report.E.latency >= u.S.pt_report.E.latency)
  | _ -> Alcotest.fail "both searches should have a best point"

let test_early_stop_knobs () =
  (* the eval cap binds exactly *)
  let capped =
    S.search
      ~params:{ S.default_params with S.max_evals = 8 }
      ~cache_dir (K.gemm ())
  in
  Alcotest.(check bool) "eval cap respected" true (capped.S.o_evaluated <= 8);
  (* the round cap binds exactly *)
  let one_round =
    S.search
      ~params:{ S.default_params with S.max_rounds = 1 }
      ~cache_dir (K.gemm ())
  in
  Alcotest.(check bool) "round cap respected" true
    (List.length one_round.S.o_rounds <= 1);
  (* a lower stability threshold can only stop earlier: the candidate
     sequence is identical until the first stop *)
  let evals stable_rounds =
    (S.search
       ~params:{ S.default_params with S.stable_rounds; S.max_evals = 200 }
       ~cache_dir (K.fir ()))
      .S.o_evaluated
  in
  Alcotest.(check bool) "stable_rounds=1 stops no later than =3" true
    (evals 1 <= evals 3)

let test_jobs_determinism () =
  (* no cache: both runs compile everything, so the exports must match
     byte for byte *)
  let params = { S.default_params with S.max_evals = 24 } in
  let a = S.search ~params ~jobs:1 (K.gemm ()) in
  let b = S.search ~params ~jobs:4 (K.gemm ()) in
  Alcotest.(check string) "frontier tables identical"
    (S.render_frontier a) (S.render_frontier b);
  Alcotest.(check string) "dse.json identical"
    (J.to_json ~tool:D.tool_version a)
    (J.to_json ~tool:D.tool_version b)

let test_weakly_dominates_legacy_grid () =
  (* on every kernel: each legacy fixed-grid point is weakly dominated
     by some point of the new frontier, with fewer full evaluations
     than exhaustive enumeration *)
  List.iter
    (fun k ->
      let o = S.search ~cache_dir ~jobs:4 k in
      let sp = o.S.o_space in
      Alcotest.(check bool)
        (k.K.kname ^ ": fewer full evals than exhaustive") true
        (o.S.o_full_evals < Sp.size sp);
      let legacy =
        let js =
          List.map
            (fun c ->
              D.job ~label:(Sp.describe c) ~clock_ns:10.0 ~kernel:k.K.kname
                (Sp.to_directives sp c))
            (Sp.seeds sp)
        in
        let b = D.run_batch ~cache_dir ~jobs:2 js in
        List.filter_map
          (fun (out : D.outcome) ->
            match out.D.o_qor with
            | Ok r -> Some (out.D.o_job.D.label, S.objectives_of_report r)
            | Error _ -> None)
          b.D.outcomes
      in
      Alcotest.(check bool) (k.K.kname ^ ": legacy grid feasible") true
        (legacy <> []);
      List.iter
        (fun (label, old_obj) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: frontier weakly dominates legacy %s"
               k.K.kname label)
            true
            (List.exists
               (fun p -> weakly_le (objectives p) old_obj)
               o.S.o_frontier))
        legacy)
    (K.all ())

let test_session_cache_reuse () =
  let dir = Filename.temp_file "mhlsc-test-dse-reuse" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let params = { S.default_params with S.max_evals = 16 } in
  let first = S.search ~params ~cache_dir:dir (K.fir ()) in
  let second = S.search ~params ~cache_dir:dir (K.fir ()) in
  Alcotest.(check bool) "first run compiles something" true
    (first.S.o_full_evals > 0);
  Alcotest.(check int) "re-run compiles nothing" 0 second.S.o_full_evals;
  Alcotest.(check int) "re-run served from cache" second.S.o_evaluated
    second.S.o_cache_hits;
  Alcotest.(check string) "same frontier either way"
    (S.render_frontier first) (S.render_frontier second)

let test_best_point_cosims () =
  let o = S.search ~cache_dir ~jobs:2 (K.gemm ()) in
  match S.best o with
  | Some best ->
      let cs = Flow.cosim ~directives:best.S.pt_directives (K.gemm ()) in
      Alcotest.(check bool) "best design computes correctly" true cs.Flow.ok
  | None -> Alcotest.fail "no best point"

(* ------------------------------------------------------------------ *)
(* dse.json                                                           *)
(* ------------------------------------------------------------------ *)

let test_dse_json_roundtrip () =
  let o = S.search ~cache_dir ~jobs:2 (K.gemm ()) in
  let s = J.to_json ~tool:D.tool_version o in
  (match J.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("valid export rejected: " ^ e));
  Alcotest.(check bool) "carries the schema version" true
    (Str_find.contains s (Printf.sprintf "\"version\": %d" J.schema_version));
  Alcotest.(check bool) "carries the kernel name" true
    (Str_find.contains s "\"kernel\": \"gemm\"");
  let f = Filename.temp_file "mhlsc-test-dse" ".json" in
  J.write_file ~tool:D.tool_version f o;
  (match J.validate_file f with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("written file rejected: " ^ e));
  Sys.remove f

let test_dse_json_rejects_garbage () =
  let reject name s =
    match J.validate s with
    | Ok () -> Alcotest.fail (name ^ " accepted")
    | Error _ -> ()
  in
  reject "empty object" "{}";
  reject "empty string" "";
  reject "wrong version" "{\n  \"version\": 999\n}";
  reject "version but no frontier"
    (Printf.sprintf "{\n  \"version\": %d\n}" J.schema_version)

let render_tests =
  [
    QCheck_alcotest.to_alcotest prop_dominates_irreflexive;
    QCheck_alcotest.to_alcotest prop_dominates_antisymmetric;
    QCheck_alcotest.to_alcotest prop_frontier_is_antichain;
  ]

let suite =
  render_tests
  @ [
      Alcotest.test_case "dominates dimension mismatch" `Quick
        test_dominates_dimension_mismatch;
      Alcotest.test_case "insert dedups keys and ties" `Quick
        test_insert_dedups_keys_and_ties;
      Alcotest.test_case "space: gemm axes" `Quick test_space_gemm_axes;
      Alcotest.test_case "space: >= 10x legacy grid everywhere" `Quick
        test_space_at_least_10x_legacy_grid;
      Alcotest.test_case "space: describe injective" `Quick
        test_describe_injective_on_space;
      Alcotest.test_case "space: seeds well-formed" `Quick
        test_seeds_are_in_space;
      Alcotest.test_case "space: neighbors canonical" `Quick
        test_neighbors_canonical;
      Alcotest.test_case "search: gemm frontier" `Quick
        test_search_gemm_frontier;
      Alcotest.test_case "search: improves over baseline" `Quick
        test_search_improves_over_baseline;
      Alcotest.test_case "search: budget constrains" `Quick
        test_budget_constrains;
      Alcotest.test_case "search: early-stop knobs" `Quick
        test_early_stop_knobs;
      Alcotest.test_case "search: jobs determinism" `Quick
        test_jobs_determinism;
      Alcotest.test_case "search: weakly dominates legacy grid" `Slow
        test_weakly_dominates_legacy_grid;
      Alcotest.test_case "search: session cache reuse" `Quick
        test_session_cache_reuse;
      Alcotest.test_case "search: best point cosims" `Quick
        test_best_point_cosims;
      Alcotest.test_case "dse.json roundtrip" `Quick test_dse_json_roundtrip;
      Alcotest.test_case "dse.json rejects garbage" `Quick
        test_dse_json_rejects_garbage;
    ]
