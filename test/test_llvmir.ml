(** LLVM IR structural tests: builder, printer/parser round-trip, and
    verifier rejection cases. *)

open Llvmir
module B = Lbuilder

(* ------------------------------------------------------------------ *)
(* Hand-built functions                                               *)
(* ------------------------------------------------------------------ *)

(** A small function with a loop, phis, GEPs, loads/stores:
    sums a float array of length [n]. *)
let build_sum n : Lmodule.func =
  let b = B.create () in
  let arr = Lvalue.reg "x" (Ltype.ptr (Ltype.Array (n, Ltype.Float))) in
  B.start_block b "entry";
  B.br b "header";
  B.start_block b "header";
  let iv = B.phi b ~name:"i" Ltype.I64 [ (Lvalue.ci64 0, "entry"); (Lvalue.reg "i.next" Ltype.I64, "body") ] in
  let acc =
    B.phi b ~name:"acc" Ltype.Float
      [ (Lvalue.cf 0.0, "entry"); (Lvalue.reg "acc.next" Ltype.Float, "body") ]
  in
  let c = B.icmp b Linstr.ISlt iv (Lvalue.ci64 n) in
  B.condbr b c "body" "exit";
  B.start_block b "body";
  let addr = B.gep b ~src_ty:(Ltype.Array (n, Ltype.Float)) arr [ Lvalue.ci64 0; iv ] in
  let v = B.load b Ltype.Float addr in
  let acc_next =
    B.emit b (Linstr.make ~result:"acc.next" ~ty:Ltype.Float (Linstr.FBin (Linstr.FAdd, acc, v)));
    Lvalue.reg "acc.next" Ltype.Float
  in
  ignore acc_next;
  B.emit b (Linstr.make ~result:"i.next" ~ty:Ltype.I64 (Linstr.IBin (Linstr.Add, iv, Lvalue.ci64 1)));
  B.br b "header";
  B.start_block b "exit";
  B.ret b (Some acc);
  {
    Lmodule.fname = "sum";
    ret_ty = Ltype.Float;
    params = [ { Lmodule.pname = "x"; pty = Ltype.ptr (Ltype.Array (n, Ltype.Float)); pattrs = [] } ];
    blocks = B.finish b;
    fattrs = [];
  }

let sum_module n : Lmodule.t =
  { Lmodule.mname = "m"; funcs = [ build_sum n ]; globals = []; decls = [] }

let test_builder_and_verifier () = Lverifier.verify_module (sum_module 8)

let test_builder_rejects_unterminated () =
  let b = B.create () in
  B.start_block b "entry";
  ignore (B.ibin b Linstr.Add (Lvalue.ci64 1) (Lvalue.ci64 2));
  Alcotest.(check bool) "finish with open block fails" true
    (try
       ignore (B.finish b);
       false
     with Support.Err.Compile_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Round-trip                                                         *)
(* ------------------------------------------------------------------ *)

let roundtrip m =
  let t1 = Lprinter.module_to_string m in
  let m2 = Lparser.parse_module t1 in
  Lverifier.verify_module m2;
  let t2 = Lprinter.module_to_string m2 in
  (t1, t2)

let test_roundtrip_sum () =
  let t1, t2 = roundtrip (sum_module 8) in
  (* module name differs after parsing; compare from the first define *)
  let from_define s =
    let idx = Str_find.find s "define" in
    String.sub s idx (String.length s - idx)
  in
  Alcotest.(check string) "roundtrip fixpoint" (from_define t1) (from_define t2)

let test_roundtrip_lowered_kernels () =
  List.iter
    (fun k ->
      let m = k.Workloads.Kernels.build Workloads.Kernels.pipelined in
      let lm = Lowering.Lower.lower_module m in
      let t1 = Lprinter.module_to_string lm in
      let lm2 = Lparser.parse_module t1 in
      Lverifier.verify_module lm2;
      let t2 = Lprinter.module_to_string lm2 in
      let strip s =
        let idx = Str_find.find s "declare" in
        String.sub s idx (String.length s - idx)
      in
      Alcotest.(check string)
        (k.Workloads.Kernels.kname ^ " lowered IR round-trips")
        (strip t1) (strip t2))
    (Workloads.Kernels.all ())

let test_roundtrip_adapted_kernels () =
  List.iter
    (fun k ->
      let m = k.Workloads.Kernels.build Workloads.Kernels.pipelined in
      let lm, _, _ = Flow_util.frontend_exn m in
      let t1 = Lprinter.module_to_string lm in
      let lm2 = Lparser.parse_module t1 in
      Lverifier.verify_module lm2;
      Alcotest.(check bool)
        (k.Workloads.Kernels.kname ^ " adapted IR still HLS-legal")
        true
        (Hls_backend.Adaptor_markers.legality_errors lm2 = []))
    (Workloads.Kernels.all ())

(* ------------------------------------------------------------------ *)
(* Verifier rejections                                                *)
(* ------------------------------------------------------------------ *)

let expect_reject name text =
  Alcotest.(check bool) name true
    (try
       let m = Lparser.parse_module text in
       Lverifier.verify_module m;
       false
     with Support.Err.Compile_error _ -> true)

let test_verifier_use_before_def () =
  expect_reject "use before def"
    {|define i64 @f() {
entry:
  %a = add i64 %b, 1
  %b = add i64 1, 2
  ret i64 %a
}|}

let test_verifier_double_def () =
  expect_reject "double definition"
    {|define i64 @f() {
entry:
  %a = add i64 1, 1
  %a = add i64 2, 2
  ret i64 %a
}|}

let test_verifier_missing_terminator () =
  expect_reject "missing terminator"
    {|define void @f() {
entry:
  %a = add i64 1, 1
other:
  ret void
}|}

let test_verifier_phi_in_entry () =
  expect_reject "phi in entry block"
    {|define i64 @f() {
entry:
  %p = phi i64 [ 0, %entry ]
  ret i64 %p
}|}

let test_verifier_bad_branch_target () =
  expect_reject "branch to unknown block"
    {|define void @f() {
entry:
  br label %nowhere
}|}

let test_verifier_type_mismatch () =
  expect_reject "store type mismatch"
    {|define void @f(float* %p) {
entry:
  store i64 1, float* %p
  ret void
}|}

let test_verifier_dominance_across_blocks () =
  expect_reject "cross-block use not dominated"
    {|define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i64 1, 1
  br label %join
b:
  br label %join
join:
  ret i64 %x
}|}

let test_verifier_accepts_valid_diamond () =
  let text =
    {|define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i64 1, 1
  br label %join
b:
  %y = add i64 2, 2
  br label %join
join:
  %r = phi i64 [ %x, %a ], [ %y, %b ]
  ret i64 %r
}|}
  in
  Lverifier.verify_module (Lparser.parse_module text)

let test_verifier_call_arity () =
  expect_reject "call arity mismatch"
    {|declare void @g(i64)
define void @f() {
entry:
  call void @g(i64 1, i64 2)
  ret void
}|}

let suite =
  [
    Alcotest.test_case "builder + verifier" `Quick test_builder_and_verifier;
    Alcotest.test_case "builder rejects open blocks" `Quick test_builder_rejects_unterminated;
    Alcotest.test_case "roundtrip sum" `Quick test_roundtrip_sum;
    Alcotest.test_case "roundtrip lowered kernels" `Quick test_roundtrip_lowered_kernels;
    Alcotest.test_case "roundtrip adapted kernels" `Quick test_roundtrip_adapted_kernels;
    Alcotest.test_case "verifier: use before def" `Quick test_verifier_use_before_def;
    Alcotest.test_case "verifier: double def" `Quick test_verifier_double_def;
    Alcotest.test_case "verifier: missing terminator" `Quick test_verifier_missing_terminator;
    Alcotest.test_case "verifier: phi in entry" `Quick test_verifier_phi_in_entry;
    Alcotest.test_case "verifier: bad branch target" `Quick test_verifier_bad_branch_target;
    Alcotest.test_case "verifier: type mismatch" `Quick test_verifier_type_mismatch;
    Alcotest.test_case "verifier: dominance" `Quick test_verifier_dominance_across_blocks;
    Alcotest.test_case "verifier: valid diamond" `Quick test_verifier_accepts_valid_diamond;
    Alcotest.test_case "verifier: call arity" `Quick test_verifier_call_arity;
  ]
