(** Table-driven boundary tests for the shared two's-complement
    semantics ({!Support.Int_sem}) as exposed by both interpreters.

    Expected values are precomputed LLVM results (what `opt -O0` +
    `lli` produce for the same ops), so these tables pin the semantics
    independently of the implementation under test.  Negative literals
    stand for the normalized form of large unsigned patterns, e.g.
    [-56] is the i8 bit pattern of 200. *)

open Llvmir

(* ------------------------------------------------------------------ *)
(* Linterp.ibin_eval                                                  *)
(* ------------------------------------------------------------------ *)

let ibin_cases =
  [
    (* name, op, ty, a, b, expected *)
    ("udiv i8 200/3", Linstr.UDiv, Ltype.I8, -56, 3, 66);
    ("urem i8 200%3", Linstr.URem, Ltype.I8, -56, 3, 2);
    ("udiv i32 0xffffffff/2", Linstr.UDiv, Ltype.I32, -1, 2, 0x7FFFFFFF);
    ("urem i32 0xffffffff%2", Linstr.URem, Ltype.I32, -1, 2, 1);
    ("udiv i32 min/-1", Linstr.UDiv, Ltype.I32, -0x80000000, -1, 0);
    ("urem i32 min%-1", Linstr.URem, Ltype.I32, -0x80000000, -1, -0x80000000);
    (* i64 runs in Int64 and truncates back to the 63-bit native int *)
    ("udiv i64 -2/2", Linstr.UDiv, Ltype.I64, -2, 2, -1);
    ("shl i32 1<<31", Linstr.Shl, Ltype.I32, 1, 31, -0x80000000);
    ("shl i32 1<<32 (oob -> 0)", Linstr.Shl, Ltype.I32, 1, 32, 0);
    ("shl i32 1<<33 (oob -> 0)", Linstr.Shl, Ltype.I32, 1, 33, 0);
    ("shl i32 1<<-1 (oob -> 0)", Linstr.Shl, Ltype.I32, 1, -1, 0);
    ("shl i8 1<<7", Linstr.Shl, Ltype.I8, 1, 7, -128);
    ("shl i8 1<<8 (oob -> 0)", Linstr.Shl, Ltype.I8, 1, 8, 0);
    ("shl i64 1<<62 wraps to native min", Linstr.Shl, Ltype.I64, 1, 62, min_int);
    ("lshr i32 -1>>1", Linstr.LShr, Ltype.I32, -1, 1, 0x7FFFFFFF);
    ("lshr i32 -1>>31", Linstr.LShr, Ltype.I32, -1, 31, 1);
    ("lshr i32 -1>>32 (oob -> 0)", Linstr.LShr, Ltype.I32, -1, 32, 0);
    ("lshr i8 200>>2", Linstr.LShr, Ltype.I8, -56, 2, 50);
    ("ashr i32 -8>>1", Linstr.AShr, Ltype.I32, -8, 1, -4);
    ("ashr i32 -8>>32 (oob -> sign)", Linstr.AShr, Ltype.I32, -8, 32, -1);
    ("ashr i32 8>>70 (oob -> 0)", Linstr.AShr, Ltype.I32, 8, 70, 0);
    ("ashr i64 -1>>63 (oob -> sign)", Linstr.AShr, Ltype.I64, -1, 63, -1);
    ("udiv i1 1/1", Linstr.UDiv, Ltype.I1, 1, 1, 1);
  ]

let test_ibin_eval () =
  List.iter
    (fun (name, op, ty, a, b, expected) ->
      Alcotest.(check int) name expected (Linterp.ibin_eval op ty a b))
    ibin_cases

(* ------------------------------------------------------------------ *)
(* Linterp.icmp_eval                                                  *)
(* ------------------------------------------------------------------ *)

let icmp_cases =
  [
    ("ult 0xffffffff 1 = false", Linstr.IUlt, -1, 1, false);
    ("ult 1 0xffffffff = true", Linstr.IUlt, 1, -1, true);
    ("ult 0 0 = false", Linstr.IUlt, 0, 0, false);
    ("ule -1 -1 = true", Linstr.IUle, -1, -1, true);
    ("ugt 0xffffffff 0 = true", Linstr.IUgt, -1, 0, true);
    ("uge 0 0xffffffff = false", Linstr.IUge, 0, -1, false);
    ("slt -1 1 = true (sanity)", Linstr.ISlt, -1, 1, true);
    ("sgt -1 1 = false (sanity)", Linstr.ISgt, -1, 1, false);
  ]

let test_icmp_eval () =
  List.iter
    (fun (name, p, a, b, expected) ->
      Alcotest.(check bool) name expected (Linterp.icmp_eval p a b))
    icmp_cases

(* ------------------------------------------------------------------ *)
(* Linterp.intrinsic_eval: unsigned min/max                           *)
(* ------------------------------------------------------------------ *)

let test_unsigned_intrinsics () =
  let st = Linterp.create (Lmodule.empty "t") in
  let call name a b =
    match Linterp.intrinsic_eval st name [ Linterp.RInt a; Linterp.RInt b ] with
    | Some (Linterp.RInt v) -> v
    | _ -> Alcotest.fail (name ^ ": expected an integer")
  in
  Alcotest.(check int) "umax(-1, 1) = -1" (-1) (call "llvm.umax.i32" (-1) 1);
  Alcotest.(check int) "umin(-1, 1) = 1" 1 (call "llvm.umin.i32" (-1) 1);
  Alcotest.(check int) "umax(3, 7) = 7" 7 (call "llvm.umax.i32" 3 7);
  Alcotest.(check int) "smax(-1, 1) = 1" 1 (call "llvm.smax.i32" (-1) 1)

(* ------------------------------------------------------------------ *)
(* The mhir interpreter: the same table through arith ops             *)
(* ------------------------------------------------------------------ *)

module B = Mhir.Builder
module T = Mhir.Types

(** Evaluate one i32 binop on constants through {!Mhir.Interp}. *)
let mhir_binop op a bval =
  let b = B.create () in
  let f =
    B.func b "f" ~args:[] ~ret_tys:[ T.I32 ] (fun b _ ->
        let x = B.constant_i b ~ty:T.I32 a in
        let y = B.constant_i b ~ty:T.I32 bval in
        B.ret b [ op b x y ])
  in
  match Mhir.Interp.run_func { Mhir.Ir.funcs = [ f ] } "f" [] with
  | [ Mhir.Interp.Int v ] -> v
  | _ -> Alcotest.fail "expected a single integer result"

let mhir_cmpi pred a bval =
  let b = B.create () in
  let f =
    B.func b "f" ~args:[] ~ret_tys:[ T.I1 ] (fun b _ ->
        let x = B.constant_i b ~ty:T.I32 a in
        let y = B.constant_i b ~ty:T.I32 bval in
        B.ret b [ B.cmpi b pred x y ])
  in
  match Mhir.Interp.run_func { Mhir.Ir.funcs = [ f ] } "f" [] with
  | [ Mhir.Interp.Int v ] -> v
  | _ -> Alcotest.fail "expected a single integer result"

let test_mhir_unsigned_ops () =
  let cases =
    [
      ("divui 0xffffffff/2", B.divui, -1, 2, 0x7FFFFFFF);
      ("remui 0xffffffff%2", B.remui, -1, 2, 1);
      ("divui 200/3", B.divui, 200, 3, 66);
      ("shrui -1>>1", B.shrui, -1, 1, 0x7FFFFFFF);
      ("shrui -1>>32 (oob -> 0)", B.shrui, -1, 32, 0);
      ("shli 1<<31", B.shli, 1, 31, -0x80000000);
      ("shli 1<<32 (oob -> 0)", B.shli, 1, 32, 0);
      ("shrsi -8>>1", B.shrsi, -8, 1, -4);
      ("shrsi -8>>40 (oob -> sign)", B.shrsi, -8, 40, -1);
      ("floordivsi -7/2", B.floordivsi, -7, 2, -4);
      ("floordivsi 7/-2", B.floordivsi, 7, -2, -4);
      ("floordivsi -7/-2", B.floordivsi, -7, -2, 3);
      ("divsi -7/2 (sanity)", B.divsi, -7, 2, -3);
      ("maxui -1 1", B.maxui, -1, 1, -1);
      ("minui -1 1", B.minui, -1, 1, 1);
      ("maxsi -1 1 (sanity)", B.maxsi, -1, 1, 1);
    ]
  in
  List.iter
    (fun (name, op, a, b, expected) ->
      Alcotest.(check int) name expected (mhir_binop op a b))
    cases

let test_mhir_unsigned_cmpi () =
  let cases =
    [
      ("cmpi ult -1 1", B.Ult, -1, 1, 0);
      ("cmpi ult 1 -1", B.Ult, 1, -1, 1);
      ("cmpi ule -1 -1", B.Ule, -1, -1, 1);
      ("cmpi ugt -1 0", B.Ugt, -1, 0, 1);
      ("cmpi uge 0 -1", B.Uge, 0, -1, 0);
      ("cmpi slt -1 1 (sanity)", B.Slt, -1, 1, 1);
    ]
  in
  List.iter
    (fun (name, p, a, b, expected) ->
      Alcotest.(check int) name expected (mhir_cmpi p a b))
    cases

let suite =
  [
    Alcotest.test_case "linterp ibin boundary table" `Quick test_ibin_eval;
    Alcotest.test_case "linterp icmp unsigned table" `Quick test_icmp_eval;
    Alcotest.test_case "linterp unsigned intrinsics" `Quick
      test_unsigned_intrinsics;
    Alcotest.test_case "mhir unsigned/shift ops" `Quick test_mhir_unsigned_ops;
    Alcotest.test_case "mhir unsigned cmpi" `Quick test_mhir_unsigned_cmpi;
  ]
