(** Serve-protocol and daemon tests: golden JSON per request variant,
    codec round-trips, incremental framing, and a live daemon exercise
    covering concurrent clients, coalescing, memoization and clean
    shutdown. *)

module P = Mhls_serve.Protocol
module Server = Mhls_serve.Server
module Client = Mhls_serve.Client
module H = Mhls_cli.Handlers
module R = Mhls_cli.Render

let check = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sample requests, one per variant                                   *)
(* ------------------------------------------------------------------ *)

let full_directives =
  {
    P.d_ii = Some 2;
    d_unroll = Some 4;
    d_strategy = "middle";
    d_partitions = [ ("a", "cyclic", 2, 1) ];
  }

let compile_full =
  P.Compile
    {
      c_kernel = "gemm";
      c_flow = "direct";
      c_sched = "dynamic";
      c_directives = full_directives;
      c_clock_ns = 10.0;
      c_passes = Some [ "typed-pointers" ];
      c_disable = [ "translate-metadata" ];
    }

let compile_min =
  P.Compile
    {
      c_kernel = "fir";
      c_flow = "cpp";
      c_sched = "static";
      c_directives = P.no_directives;
      c_clock_ns = 10.0;
      c_passes = None;
      c_disable = [];
    }

let lint_req =
  P.Lint
    {
      l_kernel = Some "gemm";
      l_source = None;
      l_directives = P.no_directives;
      l_rules = Some [ "HLS201" ];
      l_werror = true;
      l_top = Some "gemm";
      l_passes = None;
      l_disable = [];
    }

let opt_req =
  P.Opt
    {
      op_source = None;
      op_synth = Some 4;
      op_passes = Some [ "dce" ];
      op_parallel = true;
      op_jobs = 2;
      op_parsafe = false;
      op_json = false;
    }

let dse_req =
  P.Dse
    {
      ds_kernel = "gemm";
      ds_sched = "both";
      ds_max_evals = Some 8;
      ds_rounds = None;
      ds_stable = None;
      ds_budget_bram = Some 32;
      ds_budget_dsp = None;
      ds_budget_lut = None;
      ds_clock_ns = 10.0;
    }

let fuzz_req =
  P.Fuzz
    { f_seed = 7; f_count = 5; f_stages = [ "lower" ]; f_shrink = false;
      f_jobs = 1 }

let all_requests =
  [
    compile_full; compile_min; lint_req; opt_req; dse_req; fuzz_req;
    P.List_kernels; P.Stats; P.Ping; P.Shutdown;
  ]

(* ------------------------------------------------------------------ *)
(* Golden JSON                                                        *)
(* ------------------------------------------------------------------ *)

(* The wire encoding is part of the public contract (schema v1): these
   strings must never change without bumping [P.version]. *)
let goldens =
  [
    ( compile_full,
      {|{"kind": "compile", "kernel": "gemm", "flow": "direct", "sched": "dynamic", "directives": {"ii": 2, "unroll": 4, "strategy": "middle", "partitions": [["a", "cyclic", 2, 1]]}, "clock_ns": 10.0, "passes": ["typed-pointers"], "disable": ["translate-metadata"]}|}
    );
    ( compile_min,
      {|{"kind": "compile", "kernel": "fir", "flow": "cpp", "sched": "static", "directives": {"ii": 1, "unroll": null, "strategy": "inner", "partitions": []}, "clock_ns": 10.0, "passes": null, "disable": []}|}
    );
    ( lint_req,
      {|{"kind": "lint", "kernel": "gemm", "source": null, "directives": {"ii": 1, "unroll": null, "strategy": "inner", "partitions": []}, "rules": ["HLS201"], "werror": true, "top": "gemm", "passes": null, "disable": []}|}
    );
    ( opt_req,
      {|{"kind": "opt", "source": null, "synth": 4, "passes": ["dce"], "parallel": true, "jobs": 2, "parsafe": false, "json": false}|}
    );
    ( dse_req,
      {|{"kind": "dse", "kernel": "gemm", "sched": "both", "max_evals": 8, "rounds": null, "stable_rounds": null, "budget_bram": 32, "budget_dsp": null, "budget_lut": null, "clock_ns": 10.0}|}
    );
    ( fuzz_req,
      {|{"kind": "fuzz", "seed": 7, "count": 5, "stages": ["lower"], "shrink": false, "jobs": 1}|}
    );
    (P.List_kernels, {|{"kind": "list"}|});
    (P.Stats, {|{"kind": "stats"}|});
    (P.Ping, {|{"kind": "ping"}|});
    (P.Shutdown, {|{"kind": "shutdown"}|});
  ]

let test_golden_requests () =
  List.iter
    (fun (req, want) ->
      check
        (Printf.sprintf "golden %s" (P.request_kind req))
        want
        (Support.Json.to_string (P.request_to_json req)))
    goldens

let test_golden_frames () =
  let cases =
    [
      ( P.Request { q_id = 3; q_stream = true; q_req = P.Ping },
        {|{"v": 1, "frame": "request", "id": 3, "stream": true, "kind": "ping"}|}
      );
      ( P.Response { r_id = 9; r_reply = P.Busy 64 },
        {|{"v": 1, "frame": "response", "id": 9, "status": "busy", "queue_depth": 64}|}
      );
      ( P.Event
          { e_id = 5; e_stage = "adaptor"; e_pass = "typed-pointers";
            e_seconds = 0.25; e_before = 10; e_after = 8 },
        {|{"v": 1, "frame": "event", "id": 5, "stage": "adaptor", "pass": "typed-pointers", "seconds": 0.25, "before": 10, "after": 8}|}
      );
      ( P.Response
          {
            r_id = 2;
            r_reply =
              P.Failed
                [
                  Support.Diag.error ~rule:"HLS905" ~func:"f" ~hint:"h"
                    "boom %d" 1;
                ];
          },
        {|{"v": 1, "frame": "response", "id": 2, "status": "error", "diagnostics": [{"rule": "HLS905", "severity": "error", "function": "f", "location": null, "message": "boom 1", "hint": "h"}]}|}
      );
      ( P.Response { r_id = 1; r_reply = P.Done P.R_pong },
        {|{"v": 1, "frame": "response", "id": 1, "status": "ok", "kind": "ping", "payload": {}}|}
      );
    ]
  in
  List.iter
    (fun (frame, want) -> check "golden frame" want (P.frame_to_string frame))
    cases

(* ------------------------------------------------------------------ *)
(* Round-trips                                                        *)
(* ------------------------------------------------------------------ *)

let canon req = Support.Json.to_string (P.request_to_json req)

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match P.request_of_json (P.request_to_json req) with
      | Error e -> Alcotest.failf "decode %s: %s" (P.request_kind req) e
      | Ok req' -> check (P.request_kind req) (canon req) (canon req'))
    all_requests

let test_frame_roundtrip () =
  let frames =
    List.mapi
      (fun i req -> P.Request { q_id = i + 1; q_stream = i mod 2 = 0; q_req = req })
      all_requests
    @ [
        P.Response { r_id = 1; r_reply = P.Done P.R_pong };
        P.Response { r_id = 2; r_reply = P.Busy 3 };
        P.Response
          { r_id = 3;
            r_reply = P.Failed [ P.protocol_error "no such kernel %s" "x" ] };
        P.Event
          { e_id = 4; e_stage = "lower"; e_pass = "mem2reg"; e_seconds = 0.5;
            e_before = 12; e_after = 9 };
      ]
  in
  List.iter
    (fun f ->
      match P.frame_of_string (P.frame_to_string f) with
      | Error e -> Alcotest.failf "frame decode: %s" e
      | Ok f' -> check "frame" (P.frame_to_string f) (P.frame_to_string f'))
    frames

let test_lenient_defaults () =
  match Support.Json.parse {|{"kind": "compile", "kernel": "gemm"}|} with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match P.request_of_json j with
      | Error e -> Alcotest.fail e
      | Ok (P.Compile c) ->
          check "default flow" "direct" c.P.c_flow;
          check "default sched" "static" c.P.c_sched;
          Alcotest.(check (float 1e-9)) "default clock" 10.0 c.P.c_clock_ns;
          checkb "default passes" true (c.P.c_passes = None)
      | Ok r -> Alcotest.failf "wrong kind %s" (P.request_kind r))

let test_request_key () =
  (* Identical content gives identical keys; jobs that must never be
     coalesced have none. *)
  let k1 = P.request_key compile_full and k2 = P.request_key compile_full in
  checkb "same content, same key" true (k1 = k2 && k1 <> None);
  checkb "different content, different key" true
    (P.request_key compile_full <> P.request_key compile_min);
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "%s has no key" (P.request_kind r))
        true
        (P.request_key r = None))
    [ P.List_kernels; P.Stats; P.Ping; P.Shutdown ]

let test_incremental_framing () =
  let f1 = P.Request { q_id = 1; q_stream = false; q_req = P.Ping } in
  let f2 = P.Request { q_id = 2; q_stream = false; q_req = P.Stats } in
  let wire = P.encode_frame f1 ^ P.encode_frame f2 in
  (* A partial prefix yields no frames and keeps the tail intact. *)
  let cut = String.length (P.encode_frame f1) + 2 in
  (match P.decode_frames (String.sub wire 0 cut) with
  | Error e -> Alcotest.fail e
  | Ok (frames, rest) ->
      checki "one complete frame" 1 (List.length frames);
      checki "partial tail kept" 2 (String.length rest));
  (* The full buffer decodes both frames with nothing left over. *)
  (match P.decode_frames wire with
  | Error e -> Alcotest.fail e
  | Ok (frames, rest) ->
      checki "two frames" 2 (List.length frames);
      check "no tail" "" rest;
      List.iteri
        (fun i f ->
          match f with
          | Ok f' ->
              check "frame body"
                (P.frame_to_string (if i = 0 then f1 else f2))
                (P.frame_to_string f')
          | Error e -> Alcotest.fail e)
        frames);
  (* An oversized length prefix is a connection-fatal framing error. *)
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 0x7fffffffl;
  checkb "oversized frame rejected" true
    (match P.decode_frames (Bytes.to_string huge) with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Live daemon                                                        *)
(* ------------------------------------------------------------------ *)

let render_reply r =
  Support.Json.to_string (P.frame_to_json (P.Response { r_id = 0; r_reply = r }))

let compile_kernel name =
  P.Compile
    {
      c_kernel = name;
      c_flow = "direct";
      c_sched = "static";
      c_directives = P.no_directives;
      c_clock_ns = 10.0;
      c_passes = None;
      c_disable = [];
    }

let get_stats c =
  match Client.request c P.Stats with
  | Ok (P.Done (P.R_stats s)) -> s
  | Ok r -> Alcotest.failf "stats: unexpected reply %s" (render_reply r)
  | Error e -> Alcotest.failf "stats: %s" e

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mhlsc-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(** Run [f sock client] against a live daemon wired exactly like
    [mhlsc serve]: oversubscribed session, the session's domain pool
    as the reactor's executor.  [jobs = 1] keeps the executor inline
    (the sequential daemon); [tweak] adjusts the config. *)
let with_daemon ?(jobs = 1) ?(tweak = fun c -> c) f =
  let sock = fresh_sock () in
  if Sys.file_exists sock then Sys.remove sock;
  let config =
    tweak { Server.default_config with Server.socket_path = Some sock }
  in
  let daemon =
    Domain.spawn (fun () ->
        let env = H.create_env ~jobs ~oversubscribe:true () in
        Fun.protect
          ~finally:(fun () -> H.close_env env)
          (fun () ->
            match
              Server.serve ~config
                ~counters:(fun () -> H.counters env)
                ~exec:(H.background env)
                ~dispatch:(H.dispatch env) ()
            with
            | Ok () -> ()
            | Error ds -> failwith (Support.Diag.render ds)))
  in
  Fun.protect
    ~finally:(fun () -> Domain.join daemon)
    (fun () ->
      match Client.connect_unix ~retry_for:10.0 sock with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f sock c))

(** A bare protocol connection (no client-side id bookkeeping) for
    tests that need to send pathological or carefully interleaved
    frames. *)
let raw_connect (sock : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let test_daemon () =
  with_daemon (fun sock c ->
      (* Ping. *)
      (match Client.request c P.Ping with
      | Ok (P.Done P.R_pong) -> ()
      | Ok r -> Alcotest.failf "ping: %s" (render_reply r)
      | Error e -> Alcotest.failf "ping: %s" e);

      (* Two clients, same compile: the first evaluates, the second is
         served from the memo — the rendered CLI output must be
         byte-identical across the two connections. *)
      let req = compile_kernel "gemm" in
      let resp_of cl =
        match Client.request cl req with
        | Ok (P.Done (P.R_compile r)) -> r
        | Ok r -> Alcotest.failf "compile: %s" (render_reply r)
        | Error e -> Alcotest.failf "compile: %s" e
      in
      let r1 = resp_of c in
      let r2 =
        match Client.connect_unix sock with
        | Error e -> Alcotest.failf "second client: %s" e
        | Ok c2 ->
            Fun.protect ~finally:(fun () -> Client.close c2) (fun () ->
                resp_of c2)
      in
      check "two clients byte-identical" (R.compile r1) (R.compile r2);

      (* ...and structurally identical to running the handler directly
         the way the CLI does (timing excluded: wall-clock seconds are
         the one legitimately run-dependent field). *)
      let env = H.create_env ~jobs:1 () in
      let cli =
        Fun.protect
          ~finally:(fun () -> H.close_env env)
          (fun () ->
            match
              H.compile env ~trace:Support.Tracing.null
                {
                  P.c_kernel = "gemm";
                  c_flow = "direct";
                  c_sched = "static";
                  c_directives = P.no_directives;
                  c_clock_ns = 10.0;
                  c_passes = None;
                  c_disable = [];
                }
            with
            | Ok r -> r
            | Error ds ->
                Alcotest.failf "cli compile: %s" (Support.Diag.render ds))
      in
      check "daemon report = CLI report" cli.P.cr_report r1.P.cr_report;
      checki "latency" cli.P.cr_latency r1.P.cr_latency;
      checki "ii" cli.P.cr_ii r1.P.cr_ii;
      checki "bram" cli.P.cr_bram r1.P.cr_bram;
      checki "dsp" cli.P.cr_dsp r1.P.cr_dsp;

      (* Coalescing: two identical, not-yet-seen requests written in
         one segment arrive in one intake wave, so exactly one
         evaluation serves both. *)
      let before = get_stats c in
      let replies =
        match Client.pipeline c [ compile_kernel "fir"; compile_kernel "fir" ]
        with
        | Ok rs -> rs
        | Error e -> Alcotest.failf "pipeline: %s" e
      in
      (match replies with
      | [ a; b ] ->
          checkb "both done" true
            (match (a, b) with
            | P.Done (P.R_compile _), P.Done (P.R_compile _) -> true
            | _ -> false);
          check "coalesced replies identical" (render_reply a)
            (render_reply b)
      | _ -> Alcotest.failf "expected 2 replies, got %d" (List.length replies));
      let after = get_stats c in
      checki "one evaluation for the pair" 1
        (after.P.st_evaluated - before.P.st_evaluated);
      checki "one request coalesced" 1
        (after.P.st_coalesced - before.P.st_coalesced);

      (* Memoization: resubmitting the identical request re-runs
         nothing. *)
      let before = after in
      let _ = resp_of c in
      let after = get_stats c in
      checki "no new evaluation" 0 (after.P.st_evaluated - before.P.st_evaluated);
      checkb "memo hit recorded" true
        (after.P.st_memo_hits > before.P.st_memo_hits);

      (* Streaming: a fresh compile forwards pass events before the
         reply. *)
      let events = ref 0 in
      (match
         Client.request ~stream:true
           ~on_event:(fun _ -> incr events)
           c (compile_kernel "mvt")
       with
      | Ok (P.Done (P.R_compile _)) -> ()
      | Ok r -> Alcotest.failf "stream compile: %s" (render_reply r)
      | Error e -> Alcotest.failf "stream compile: %s" e);
      checkb "pass events streamed" true (!events > 0);

      (* Stats shape. *)
      let s = get_stats c in
      checki "queue bound" Server.default_config.Server.queue_max
        s.P.st_queue_max;
      checkb "compile latency tracked" true
        (List.exists
           (fun l -> l.P.ls_kind = "compile" && l.P.ls_count >= 3)
           s.P.st_latency);
      checkb "p99 >= p50" true
        (List.for_all
           (fun l -> l.P.ls_p99_ms >= l.P.ls_p50_ms)
           s.P.st_latency);

      (* Lint through the daemon equals lint in-process. *)
      let daemon_lint =
        match
          Client.request c
            (P.Lint
               {
                 l_kernel = Some "gemm";
                 l_source = None;
                 l_directives = P.no_directives;
                 l_rules = None;
                 l_werror = false;
                 l_top = None;
                 l_passes = None;
                 l_disable = [];
               })
        with
        | Ok (P.Done (P.R_lint r)) -> r.P.lr_diags
        | Ok r -> Alcotest.failf "lint: %s" (render_reply r)
        | Error e -> Alcotest.failf "lint: %s" e
      in
      let cli_lint =
        match
          H.lint
            {
              P.l_kernel = Some "gemm";
              l_source = None;
              l_directives = P.no_directives;
              l_rules = None;
              l_werror = false;
              l_top = None;
              l_passes = None;
              l_disable = [];
            }
        with
        | Ok r -> r.P.lr_diags
        | Error ds -> Alcotest.failf "cli lint: %s" (Support.Diag.render ds)
      in
      check "daemon lint = CLI lint" (Support.Diag.render cli_lint)
        (Support.Diag.render daemon_lint);

      (* Clean shutdown: acknowledged, loop exits, socket removed. *)
      (match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e));
  ()

(** A daemon with a dummy dispatcher: enough for ping/stats/shutdown,
    which the server answers itself. *)
let dummy_daemon (config : Server.config) : (unit, H.Diag.t list) result Domain.t
    =
  Domain.spawn (fun () ->
      Server.serve ~config
        ~dispatch:(fun ~trace:_ _ ->
          Error [ P.protocol_error "not implemented" ])
        ())

let shutdown_daemon sock =
  match Client.connect_unix ~retry_for:10.0 sock with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.request c P.Shutdown with
          | Ok (P.Done P.R_shutdown) -> ()
          | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
          | Error e -> Alcotest.failf "shutdown: %s" e)

let test_socket_removed () =
  (* After the daemon test the socket must be gone; run a tiny
     dedicated daemon to assert it without ordering assumptions. *)
  let sock = fresh_sock () in
  let config =
    { Server.default_config with Server.socket_path = Some sock }
  in
  let daemon = dummy_daemon config in
  shutdown_daemon sock;
  (match Domain.join daemon with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "serve: %s" (Support.Diag.render ds));
  checkb "socket unlinked on shutdown" false (Sys.file_exists sock)

(* ------------------------------------------------------------------ *)
(* Lifecycle regressions                                              *)
(* ------------------------------------------------------------------ *)

let test_sentinel_id () =
  (* A client-sent response frame is a protocol error the server
     cannot attribute to any request id: it must answer with the
     reserved sentinel id (-1), never with a real id — and id 0 must
     remain usable as an ordinary request id. *)
  with_daemon (fun sock c ->
      let fd = raw_connect sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          P.write_frame fd (P.Response { r_id = 5; r_reply = P.Done P.R_pong });
          (match P.read_frame fd with
          | Ok (P.Response { r_id; r_reply = P.Failed _ }) ->
              checki "sentinel id" P.sentinel_id r_id
          | Ok f -> Alcotest.failf "unexpected frame %s" (P.frame_to_string f)
          | Error e -> Alcotest.failf "read: %s" e);
          (* The connection survives, and request id 0 round-trips. *)
          P.write_frame fd
            (P.Request { q_id = 0; q_stream = false; q_req = P.Ping });
          match P.read_frame fd with
          | Ok (P.Response { r_id = 0; r_reply = P.Done P.R_pong }) -> ()
          | Ok f -> Alcotest.failf "unexpected frame %s" (P.frame_to_string f)
          | Error e -> Alcotest.failf "read: %s" e);
      match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e)

let test_latency_ring_bounded () =
  (* The per-kind latency store is a bounded ring: after far more than
     its capacity of samples, the reported count must stay at the
     capacity while every request was still served. *)
  with_daemon (fun _sock c ->
      let batch = List.init 1000 (fun _ -> P.Ping) in
      for _ = 1 to 5 do
        match Client.pipeline c batch with
        | Ok rs ->
            checki "batch answered" 1000 (List.length rs);
            List.iter
              (function
                | P.Done P.R_pong -> ()
                | r -> Alcotest.failf "ping: %s" (render_reply r))
              rs
        | Error e -> Alcotest.failf "pipeline: %s" e
      done;
      let s = get_stats c in
      checkb "all pings served" true (s.P.st_served >= 5000);
      (match
         List.find_opt (fun l -> l.P.ls_kind = "ping") s.P.st_latency
       with
      | Some l -> checki "ring bounded at capacity" 4096 l.P.ls_count
      | None -> Alcotest.fail "no ping latency bucket");
      match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e)

let test_signal_survival () =
  (* A stray signal mid-read used to surface as an uncaught EINTR and
     kill the daemon.  Hammer the process with SIGUSR1 while work is
     in flight; the daemon must keep answering. *)
  with_daemon ~jobs:2 (fun _sock c ->
      let stop = Atomic.make false in
      let killer =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Unix.kill (Unix.getpid ()) Sys.sigusr1;
              Unix.sleepf 0.001
            done)
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Domain.join killer)
        (fun () ->
          (match Client.request c (compile_kernel "gemm") with
          | Ok (P.Done (P.R_compile _)) -> ()
          | Ok r -> Alcotest.failf "compile: %s" (render_reply r)
          | Error e -> Alcotest.failf "compile: %s" e);
          for _ = 1 to 20 do
            match Client.request c P.Ping with
            | Ok (P.Done P.R_pong) -> ()
            | Ok r -> Alcotest.failf "ping: %s" (render_reply r)
            | Error e -> Alcotest.failf "ping: %s" e
          done);
      match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e)

let test_live_socket_refused () =
  (* A second daemon pointed at a live socket must refuse to start
     with HLS906 — and must not have unlinked the live daemon's
     socket in the process. *)
  with_daemon (fun sock c ->
      (match
         Server.serve
           ~config:
             { Server.default_config with Server.socket_path = Some sock }
           ~dispatch:(fun ~trace:_ _ ->
             Error [ P.protocol_error "not implemented" ])
           ()
       with
      | Ok () -> Alcotest.fail "second daemon started on a live socket"
      | Error (d :: _) ->
          check "refusal rule" P.rule_socket_in_use d.Support.Diag.rule
      | Error [] -> Alcotest.fail "empty diagnostics");
      checkb "live socket left alone" true (Sys.file_exists sock);
      (* The first daemon is unharmed. *)
      (match Client.request c P.Ping with
      | Ok (P.Done P.R_pong) -> ()
      | Ok r -> Alcotest.failf "ping: %s" (render_reply r)
      | Error e -> Alcotest.failf "ping: %s" e);
      match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e)

let test_stale_socket_recovered () =
  (* A socket file left behind by a crashed daemon (nothing accepting)
     must be removed and startup must proceed. *)
  let sock = fresh_sock () in
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX sock);
  Unix.listen stale 1;
  Unix.close stale;
  checkb "stale socket file present" true (Sys.file_exists sock);
  let daemon =
    dummy_daemon { Server.default_config with Server.socket_path = Some sock }
  in
  shutdown_daemon sock;
  (match Domain.join daemon with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "serve: %s" (Support.Diag.render ds));
  checkb "socket unlinked on shutdown" false (Sys.file_exists sock)

(* ------------------------------------------------------------------ *)
(* Concurrent evaluation                                              *)
(* ------------------------------------------------------------------ *)

let long_dse kernel max_evals =
  P.Dse
    {
      ds_kernel = kernel;
      ds_sched = "static";
      ds_max_evals = Some max_evals;
      ds_rounds = None;
      ds_stable = None;
      ds_budget_bram = None;
      ds_budget_dsp = None;
      ds_budget_lut = None;
      ds_clock_ns = 10.0;
    }

let rec poll_stats ?(deadline = 10.0) c pred what =
  let t0 = Unix.gettimeofday () in
  let s = get_stats c in
  if pred s then s
  else if deadline <= 0.0 then
    Alcotest.failf "timed out waiting for %s" what
  else begin
    Unix.sleepf 0.01;
    poll_stats ~deadline:(deadline -. (Unix.gettimeofday () -. t0)) c pred
      what
  end

let test_concurrent_groups () =
  (* The tentpole: a short compile pipelined behind a long DSE sweep
     must be answered first — the sweep evaluates on a worker while
     the reactor keeps serving.  Both frames travel in one write, so
     they arrive in one intake wave. *)
  with_daemon ~jobs:4 (fun sock c ->
      let fd = raw_connect sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let wire =
            P.encode_frame
              (P.Request
                 { q_id = 1; q_stream = false; q_req = long_dse "gemm" 24 })
            ^ P.encode_frame
                (P.Request
                   { q_id = 2; q_stream = false; q_req = compile_kernel "fir" })
          in
          let b = Bytes.of_string wire in
          let rec write_all at =
            if at < Bytes.length b then
              write_all (at + Unix.write fd b at (Bytes.length b - at))
          in
          write_all 0;
          let first_response () =
            match P.read_frame fd with
            | Ok (P.Response { r_id; r_reply = P.Done _ }) -> r_id
            | Ok f ->
                Alcotest.failf "unexpected frame %s" (P.frame_to_string f)
            | Error e -> Alcotest.failf "read: %s" e
          in
          checki "compile answered before the sweep" 2 (first_response ());
          (* While the sweep is still in flight its kind is visible in
             the stats; then the sweep's own reply lands. *)
          checki "dse reply follows" 1 (first_response ()));
      match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e)

let test_cancellation () =
  (* With the dse budget at 1, a second sweep queues behind the first;
     when its only waiter disconnects before it starts, the group must
     be cancelled, never evaluated. *)
  with_daemon ~jobs:4 (fun sock c ->
      let a = raw_connect sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close a with Unix.Unix_error _ -> ())
        (fun () ->
          P.write_frame a
            (P.Request
               { q_id = 1; q_stream = false; q_req = long_dse "gemm" 48 });
          let _ =
            poll_stats c
              (fun s -> List.mem_assoc "dse" s.P.st_running)
              "the first sweep to start"
          in
          let evaluated_before = (get_stats c).P.st_evaluated in
          let b = raw_connect sock in
          P.write_frame b
            (P.Request
               { q_id = 1; q_stream = false; q_req = long_dse "fir" 48 });
          let _ =
            poll_stats c
              (fun s -> s.P.st_queue_depth >= 1)
              "the second sweep to queue"
          in
          Unix.close b;
          let s =
            poll_stats c
              (fun s -> s.P.st_cancelled >= 1)
              "the orphaned sweep to be cancelled"
          in
          checki "nothing extra evaluated" evaluated_before s.P.st_evaluated;
          checki "queue drained" 0 s.P.st_queue_depth;
          (* The first sweep still completes normally. *)
          match P.read_frame a with
          | Ok (P.Response { r_id = 1; r_reply = P.Done (P.R_dse _) }) -> ()
          | Ok f -> Alcotest.failf "unexpected frame %s" (P.frame_to_string f)
          | Error e -> Alcotest.failf "read: %s" e);
      match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e)

let test_memory_shed () =
  (* A zero memory cap sheds the response memo after every completion:
     an identical resubmission re-evaluates instead of memo-hitting,
     and the shed counter records it. *)
  with_daemon
    ~tweak:(fun c -> { c with Server.max_rss_mb = Some 0 })
    (fun _sock c ->
      let run () =
        match Client.request c (compile_kernel "gemm") with
        | Ok (P.Done (P.R_compile _)) -> ()
        | Ok r -> Alcotest.failf "compile: %s" (render_reply r)
        | Error e -> Alcotest.failf "compile: %s" e
      in
      run ();
      run ();
      let s = get_stats c in
      checki "both compiles evaluated" 2 s.P.st_evaluated;
      checki "memo never hit" 0 s.P.st_memo_hits;
      checkb "shed recorded" true (s.P.st_shed >= 1);
      match Client.request c P.Shutdown with
      | Ok (P.Done P.R_shutdown) -> ()
      | Ok r -> Alcotest.failf "shutdown: %s" (render_reply r)
      | Error e -> Alcotest.failf "shutdown: %s" e)

let suite =
  [
    Alcotest.test_case "golden request json" `Quick test_golden_requests;
    Alcotest.test_case "golden frame json" `Quick test_golden_frames;
    Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "lenient request defaults" `Quick test_lenient_defaults;
    Alcotest.test_case "request keys" `Quick test_request_key;
    Alcotest.test_case "incremental framing" `Quick test_incremental_framing;
    Alcotest.test_case "daemon end-to-end" `Quick test_daemon;
    Alcotest.test_case "socket removed on shutdown" `Quick test_socket_removed;
    Alcotest.test_case "sentinel id for unattributable errors" `Quick
      test_sentinel_id;
    Alcotest.test_case "latency ring bounded" `Quick test_latency_ring_bounded;
    Alcotest.test_case "daemon survives signals mid-read" `Quick
      test_signal_survival;
    Alcotest.test_case "live socket refused (HLS906)" `Quick
      test_live_socket_refused;
    Alcotest.test_case "stale socket recovered" `Quick
      test_stale_socket_recovered;
    Alcotest.test_case "short job overtakes long sweep" `Quick
      test_concurrent_groups;
    Alcotest.test_case "orphaned group cancelled" `Quick test_cancellation;
    Alcotest.test_case "memory cap sheds memo" `Quick test_memory_shed;
  ]
