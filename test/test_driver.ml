(** Tests for the batch-compilation driver: the first-class pass
    pipeline API, the content-addressed result cache (hit / miss /
    invalidation-on-pipeline-change), the JSON trace schema, and
    parallel determinism (a 4-domain pool produces byte-identical
    results to the sequential path). *)

module D = Mhls_driver.Driver
module Tr = Mhls_driver.Trace
module Pool = Mhls_driver.Pool
module Cache = Mhls_driver.Cache
module K = Workloads.Kernels
module P = Adaptor.Pipeline

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(** A fresh, empty cache directory per test (cleaned first, so stale
    entries from an interrupted run can never fake a hit). *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mhlsc-driver-test-%d" !n)
    in
    rm_rf d;
    d

let small_jobs () =
  [
    D.job ~label:"gemm/baseline" ~kernel:"gemm" K.no_directives;
    D.job ~label:"gemm/pipelined" ~kernel:"gemm" K.pipelined;
    D.job ~label:"conv2d/pipelined" ~kernel:"conv2d" K.pipelined;
  ]

(** QoR rendering excludes wall-clock noise, so two runs of the same
    batch compare byte-for-byte. *)
let qor outcomes =
  D.render_qor
    {
      D.outcomes;
      wall_seconds = 0.0;
      jobs_used = 1;
      cache_hits = 0;
      cache_misses = 0;
    }

(* ------------------------------------------------------------------ *)
(* Pipeline API                                                       *)
(* ------------------------------------------------------------------ *)

let test_pipeline_default () =
  Alcotest.(check (list string))
    "default pass order"
    [
      "legalize-intrinsics"; "eliminate-descriptors"; "typed-pointers";
      "canonicalize-geps"; "translate-metadata"; "lower-interfaces";
    ]
    (P.enabled_names P.default)

let test_pipeline_of_names () =
  (match P.of_names [ "typed-pointers"; "legalize-intrinsics" ] with
  | Ok p ->
      Alcotest.(check (list string))
        "order preserved"
        [ "typed-pointers"; "legalize-intrinsics" ]
        (P.enabled_names p)
  | Error _ -> Alcotest.fail "known names must build");
  match P.of_names [ "no-such-pass" ] with
  | Ok _ -> Alcotest.fail "unknown name must be rejected"
  | Error d ->
      Alcotest.(check string) "HLS-style rule id" "HLS900" d.Support.Diag.rule;
      Alcotest.(check bool)
        "hint lists known passes" true
        (match d.Support.Diag.hint with
        | Some h -> String.length h > 0
        | None -> false)

let test_pipeline_set_enabled () =
  (match P.disable "canonicalize-geps" P.default with
  | Ok p ->
      Alcotest.(check bool)
        "pass dropped from enabled set" false
        (List.mem "canonicalize-geps" (P.enabled_names p));
      Alcotest.(check bool)
        "describe distinguishes the variant" false
        (P.describe p = P.describe P.default)
  | Error _ -> Alcotest.fail "known pass must toggle");
  match P.disable "no-such-pass" P.default with
  | Ok _ -> Alcotest.fail "unknown pass must be a diagnostic"
  | Error d ->
      Alcotest.(check string) "HLS900 on toggle" "HLS900" d.Support.Diag.rule

let test_session_incremental () =
  (* a live session keeps its pool and cache across submissions: the
     second submit of the same jobs is served entirely from cache *)
  let dir = fresh_dir () in
  D.with_session ~cache_dir:dir ~jobs:2 (fun s ->
      let js = small_jobs () in
      let b1 = D.submit_exn s js in
      let b2 = D.submit_exn s js in
      Alcotest.(check int)
        "session counts both submissions"
        (2 * List.length js)
        (D.session_submitted s);
      Alcotest.(check int) "warm submit all hits" (List.length js)
        (D.session_hits s);
      List.iter
        (fun o -> Alcotest.(check bool) "warm outcome cached" true
            o.D.o_from_cache)
        b2;
      Alcotest.(check string) "identical QoR across submissions" (qor b1)
        (qor b2));
  (* a closed session rejects further work with an HLS904 diagnostic,
     not an exception (the unified result-based error convention) *)
  let s = D.create_session ~jobs:1 () in
  D.close_session s;
  D.close_session s;
  (* idempotent *)
  (match D.submit s (small_jobs ()) with
  | Ok _ -> Alcotest.fail "submit after close must be rejected"
  | Error [ d ] ->
      Alcotest.(check string) "closed-session rule" "HLS904"
        d.Support.Diag.rule
  | Error _ -> Alcotest.fail "expected exactly one HLS904 diagnostic");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Result cache                                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let dir = fresh_dir () in
  let js = small_jobs () in
  let b1 = D.run_batch ~cache_dir:dir js in
  Alcotest.(check int) "cold run: all misses" (List.length js) b1.D.cache_misses;
  Alcotest.(check int) "cold run: no hits" 0 b1.D.cache_hits;
  List.iter
    (fun o -> Alcotest.(check bool) "cold run computed" false o.D.o_from_cache)
    b1.D.outcomes;
  let b2 = D.run_batch ~cache_dir:dir js in
  Alcotest.(check int) "warm run: all hits" (List.length js) b2.D.cache_hits;
  Alcotest.(check int) "warm run: no misses" 0 b2.D.cache_misses;
  List.iter
    (fun o -> Alcotest.(check bool) "warm run cached" true o.D.o_from_cache)
    b2.D.outcomes;
  Alcotest.(check string)
    "cached QoR identical to computed QoR" (qor b1.D.outcomes)
    (qor b2.D.outcomes);
  List.iter
    (fun (r : Tr.record) ->
      Alcotest.(check bool) "warm trace marked cached" true r.Tr.tr_cached)
    (D.trace_records b2);
  rm_rf dir

let test_cache_invalidation_on_pipeline_change () =
  let dir = fresh_dir () in
  let js = small_jobs () in
  let b1 = D.run_batch ~cache_dir:dir js in
  Alcotest.(check int) "cold misses" (List.length js) b1.D.cache_misses;
  (* same jobs, different pipeline: the pipeline description is part of
     the content address, so nothing may be served from the old run *)
  let p =
    match P.disable "canonicalize-geps" P.default with
    | Ok p -> p
    | Error _ -> Alcotest.fail "known pass"
  in
  let b2 = D.run_batch ~pipeline:p ~cache_dir:dir js in
  Alcotest.(check int)
    "pipeline change misses everything" (List.length js) b2.D.cache_misses;
  Alcotest.(check int) "pipeline change hits nothing" 0 b2.D.cache_hits;
  (* both variants now live side by side *)
  let c = Cache.create ~dir in
  Alcotest.(check int)
    "both variants stored"
    (2 * List.length js)
    (Cache.entry_count c);
  rm_rf dir

let test_cache_key_separator () =
  (* the key must be injective w.r.t. part boundaries *)
  Alcotest.(check bool)
    "no concatenation collision" false
    (Cache.key [ "ab"; "c" ] = Cache.key [ "a"; "bc" ]);
  Alcotest.(check bool)
    "arity matters" false
    (Cache.key [ "a"; "" ] = Cache.key [ "a" ])

(* ------------------------------------------------------------------ *)
(* Trace schema                                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_schema_golden () =
  let b = D.run_batch (small_jobs ()) in
  let records = D.trace_records b in
  Alcotest.(check bool) "trace non-empty" true (records <> []);
  let stages =
    List.sort_uniq compare (List.map (fun r -> r.Tr.tr_stage) records)
  in
  Alcotest.(check bool)
    "adaptor stage traced" true
    (List.mem "adaptor" stages);
  Alcotest.(check bool)
    "llvm-opt stage traced" true
    (List.mem "llvm-opt" stages);
  let json = Tr.to_json ~tool:D.tool_version records in
  (match Tr.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "golden trace rejected: %s" e);
  (* every record object carries the full schema in order *)
  Alcotest.(check bool)
    "key order is canonical" true
    (let r = List.hd records in
     let fields = String.concat "" (List.map fst (Tr.record_fields r)) in
     fields
     = "jobkernelflowstagepasssecondsinstrs_beforeinstrs_after"
       ^ "minor_wordsmajor_wordscached")

let test_trace_schema_rejects_malformed () =
  (match Tr.validate "{\"records\": []}" with
  | Ok () -> Alcotest.fail "missing version must be rejected"
  | Error _ -> ());
  (match Tr.validate "{\"version\": 1}" with
  | Ok () -> Alcotest.fail "missing records must be rejected"
  | Error _ -> ());
  let missing_key =
    "{\"version\": 1, \"tool\": \"t\", \"records\": [\n\
    \  {\"job\": \"j\", \"kernel\": \"k\", \"flow\": \"direct-ir\",\n\
    \   \"stage\": \"adaptor\", \"pass\": \"p\", \"seconds\": 0.1,\n\
    \   \"instrs_before\": 1, \"instrs_after\": 1,\n\
    \   \"minor_words\": 0, \"major_words\": 0}\n\
     ]}"
  in
  match Tr.validate missing_key with
  | Ok () -> Alcotest.fail "record lacking 'cached' must be rejected"
  | Error e ->
      Alcotest.(check bool)
        "error names the missing key" true
        (let contains ~needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i =
             i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
           in
           go 0
         in
         contains ~needle:"cached" e)

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_preserves_order () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int))
    "map order preserved across 4 domains"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_batch_determinism () =
  (* run_batch clamps its worker count to the hardware, so drive the
     pool directly: 4 real domains vs the inline sequential path must
     produce byte-identical QoR, in the same order *)
  let js = D.all_kernel_jobs () in
  let seq = List.map (D.run_job ~pipeline:P.default ~cache:None) js in
  let par = Pool.map ~jobs:4 (D.run_job ~pipeline:P.default ~cache:None) js in
  Alcotest.(check string)
    "4-domain batch byte-identical to sequential" (qor seq) (qor par)

let test_batch_report_stats () =
  let b = D.run_batch (small_jobs ()) in
  Alcotest.(check bool)
    "no cache dir reported as disabled" true
    (let s = D.render_stats b in
     let nl = String.length "cache: disabled" and hl = String.length s in
     let rec go i =
       i + nl <= hl && (String.sub s i nl = "cache: disabled" || go (i + 1))
     in
     go 0);
  Alcotest.(check int) "all outcomes present" (List.length (small_jobs ()))
    (List.length b.D.outcomes)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "pipeline default" `Quick test_pipeline_default;
    Alcotest.test_case "pipeline of_names" `Quick test_pipeline_of_names;
    Alcotest.test_case "pipeline set_enabled" `Quick test_pipeline_set_enabled;
    Alcotest.test_case "session incremental submit" `Quick
      test_session_incremental;
    Alcotest.test_case "cache hit miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache invalidation on pipeline change" `Quick
      test_cache_invalidation_on_pipeline_change;
    Alcotest.test_case "cache key separator" `Quick test_cache_key_separator;
    Alcotest.test_case "trace schema golden" `Quick test_trace_schema_golden;
    Alcotest.test_case "trace schema rejects malformed" `Quick
      test_trace_schema_rejects_malformed;
    Alcotest.test_case "pool preserves order" `Quick test_pool_preserves_order;
    Alcotest.test_case "batch determinism" `Quick test_batch_determinism;
    Alcotest.test_case "batch report stats" `Quick test_batch_report_stats;
  ]
