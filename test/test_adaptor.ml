(** Tests for the adaptor (the paper's core contribution): each
    legalization pass in isolation, the full pipeline, the compat
    checker, and the ablations. *)

open Llvmir
module A = Adaptor

let parse text =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  m

let gemm_modern () =
  let m =
    (Workloads.Kernels.gemm ()).Workloads.Kernels.build
      Workloads.Kernels.pipelined
  in
  let lm = Lowering.Lower.lower_module m in
  fst (Pass.run_pipeline Pass.default_pipeline lm)

(* ------------------------------------------------------------------ *)
(* Pass 1: intrinsic legalization                                     *)
(* ------------------------------------------------------------------ *)

let test_legalize_smax () =
  let m =
    parse
      {|declare i64 @llvm.smax.i64(i64, i64)
define i64 @f(i64 %a, i64 %b) {
entry:
  %m = call i64 @llvm.smax.i64(i64 %a, i64 %b)
  ret i64 %m
}|}
  in
  let m' = A.Legalize_intrinsics.run m in
  Lverifier.verify_module m';
  Alcotest.(check bool) "no llvm.* calls remain" true
    (A.Compat.check m'
     |> List.for_all (fun i ->
            match i.A.Compat.kind with
            | A.Compat.Modern_intrinsic _ -> false
            | _ -> true));
  let run mm a b =
    let st = Linterp.create mm in
    match Linterp.run st "f" [ Linterp.RInt a; Linterp.RInt b ] with
    | Some (Linterp.RInt v) -> v
    | _ -> -1
  in
  Alcotest.(check int) "smax(3,9)" 9 (run m' 3 9);
  Alcotest.(check int) "smax(9,3)" 9 (run m' 9 3);
  Alcotest.(check int) "smax(-5,-9)" (-5) (run m' (-5) (-9))

let test_legalize_fmuladd () =
  let m =
    parse
      {|declare float @llvm.fmuladd.f32(float, float, float)
define float @f(float %a) {
entry:
  %m = call float @llvm.fmuladd.f32(float %a, float 3.0, float 4.0)
  ret float %m
}|}
  in
  let stats = A.Legalize_intrinsics.fresh_stats () in
  let m' = A.Legalize_intrinsics.run ~stats m in
  Alcotest.(check int) "one fmuladd split" 1 stats.A.Legalize_intrinsics.fmuladd;
  let st = Linterp.create m' in
  (match Linterp.run st "f" [ Linterp.RFloat 2.0 ] with
  | Some (Linterp.RFloat v) -> Alcotest.(check (float 1e-9)) "2*3+4" 10.0 v
  | _ -> Alcotest.fail "bad result");
  Alcotest.(check bool) "declaration pruned" true
    (Lmodule.find_decl m' "llvm.fmuladd.f32" = None)

let test_legalize_drops_lifetime_assume () =
  let m =
    parse
      {|declare void @llvm.lifetime.start.p0(i64, float*)
declare void @llvm.assume(i1)
define void @f() {
entry:
  %buf = alloca [4 x float]
  %p = bitcast [4 x float]* %buf to float*
  call void @llvm.lifetime.start.p0(i64 16, float* %p)
  %c = icmp sgt i64 4, 0
  call void @llvm.assume(i1 %c)
  ret void
}|}
  in
  let stats = A.Legalize_intrinsics.fresh_stats () in
  let m' = A.Legalize_intrinsics.run ~stats m in
  Alcotest.(check int) "two markers dropped" 2 stats.A.Legalize_intrinsics.dropped;
  let calls =
    List.fold_left
      (fun acc f ->
        Lmodule.fold_insts
          (fun n (i : Linstr.t) ->
            match i.Linstr.op with Linstr.Call _ -> n + 1 | _ -> n)
          acc f)
      0 m'.Lmodule.funcs
  in
  Alcotest.(check int) "no calls remain" 0 calls

let test_legalize_freeze () =
  let m =
    parse
      {|define i64 @f(i64 %x) {
entry:
  %fz = freeze i64 %x
  %r = add i64 %fz, 1
  ret i64 %r
}|}
  in
  let m' = A.Legalize_intrinsics.run m in
  Alcotest.(check bool) "freeze forwarded" true
    (List.for_all
       (fun i ->
         match i.A.Compat.kind with A.Compat.Freeze_inst -> false | _ -> true)
       (A.Compat.check m'));
  let st = Linterp.create m' in
  (match Linterp.run st "f" [ Linterp.RInt 41 ] with
  | Some (Linterp.RInt 42) -> ()
  | _ -> Alcotest.fail "freeze semantics broken")

(* ------------------------------------------------------------------ *)
(* Pass 2: descriptor elimination                                     *)
(* ------------------------------------------------------------------ *)

let test_descriptors_detected_and_removed () =
  let m = gemm_modern () in
  let before = A.Compat.check m in
  Alcotest.(check bool) "descriptors present before" true
    (List.exists
       (fun i -> i.A.Compat.kind = A.Compat.Memref_descriptor)
       before);
  let stats = A.Eliminate_descriptors.fresh_stats () in
  let m' = A.Eliminate_descriptors.run ~stats m in
  Lverifier.verify_module m';
  Alcotest.(check int) "three descriptors eliminated" 3
    stats.A.Eliminate_descriptors.descriptors;
  Alcotest.(check bool) "all GEPs delinearized" true
    (stats.A.Eliminate_descriptors.delinearized > 0
    && stats.A.Eliminate_descriptors.flat_fallback = 0);
  let after = A.Compat.check m' in
  Alcotest.(check bool) "no descriptors after" true
    (List.for_all
       (fun i -> i.A.Compat.kind <> A.Compat.Memref_descriptor)
       after)

let test_descriptor_elimination_semantics () =
  let k = Workloads.Kernels.gemm () in
  let m = gemm_modern () in
  let m' = A.Eliminate_descriptors.run m in
  let out1 = Flow.run_llvm k m in
  let out2 = Flow.run_llvm k m' in
  List.iteri
    (fun i (a, b) ->
      Array.iteri
        (fun j av ->
          if Float.abs (av -. b.(j)) > 1e-9 then
            Alcotest.failf "gemm diverges at arg %d[%d]" i j)
        a)
    (List.combine out1 out2)

let test_flat_fallback_mode () =
  let m = gemm_modern () in
  let stats = A.Eliminate_descriptors.fresh_stats () in
  let m' = A.Eliminate_descriptors.run ~stats ~delinearize:false m in
  Lverifier.verify_module m';
  Alcotest.(check int) "no GEP delinearized" 0
    stats.A.Eliminate_descriptors.delinearized;
  Alcotest.(check bool) "flat fallbacks used" true
    (stats.A.Eliminate_descriptors.flat_fallback > 0);
  (* semantics must still hold *)
  let k = Workloads.Kernels.gemm () in
  let out1 = Flow.run_llvm k m in
  let out2 = Flow.run_llvm k m' in
  List.iter2
    (fun a b ->
      Array.iteri
        (fun j av ->
          if Float.abs (av -. b.(j)) > 1e-9 then Alcotest.fail "flat view diverges")
        a)
    out1 out2

(* ------------------------------------------------------------------ *)
(* Pass 3: typed pointers                                             *)
(* ------------------------------------------------------------------ *)

let test_typed_pointer_reconstruction () =
  let m =
    parse
      {|define float @f(ptr %p) {
entry:
  %a = getelementptr [8 x float], ptr %p, i64 0, i64 3
  %v = load float, ptr %a
  ret float %v
}|}
  in
  let m' = A.Typed_pointers.run m in
  Lverifier.verify_module m';
  let f = Lmodule.find_func_exn m' "f" in
  let p = List.hd f.Lmodule.params in
  Alcotest.(check string) "parameter typed" "[8 x float]*"
    (Ltype.to_string p.Lmodule.pty);
  Alcotest.(check bool) "no opaque pointers remain" true
    (List.for_all
       (fun i -> i.A.Compat.kind <> A.Compat.Opaque_pointer)
       (A.Compat.check m'))

let test_typed_pointers_default_i8 () =
  let m =
    parse
      {|define void @f(ptr %p) {
entry:
  ret void
}|}
  in
  let stats = A.Typed_pointers.fresh_stats () in
  let m' = A.Typed_pointers.run ~stats m in
  let f = Lmodule.find_func_exn m' "f" in
  Alcotest.(check string) "unconstrained pointer becomes i8*" "i8*"
    (Ltype.to_string (List.hd f.Lmodule.params).Lmodule.pty);
  Alcotest.(check int) "counted as defaulted" 1 stats.A.Typed_pointers.defaulted

(* ------------------------------------------------------------------ *)
(* Pass 4: GEP canonicalization                                       *)
(* ------------------------------------------------------------------ *)

let test_gep_merge () =
  let m =
    parse
      {|define float @f([4 x [8 x float]]* %p) {
entry:
  %row = getelementptr [4 x [8 x float]], [4 x [8 x float]]* %p, i64 0, i64 2
  %elt = getelementptr [8 x float], [8 x float]* %row, i64 0, i64 5
  %v = load float, float* %elt
  ret float %v
}|}
  in
  let stats = A.Canonicalize_geps.fresh_stats () in
  let m' = A.Canonicalize_geps.run ~stats m in
  Lverifier.verify_module m';
  Alcotest.(check int) "one merge happened" 1 stats.A.Canonicalize_geps.merged;
  let geps =
    List.fold_left
      (fun acc f ->
        Lmodule.fold_insts
          (fun n (i : Linstr.t) ->
            match i.Linstr.op with Linstr.Gep _ -> n + 1 | _ -> n)
          acc f)
      0 m'.Lmodule.funcs
  in
  Alcotest.(check int) "one gep remains" 1 geps;
  (* semantics *)
  let st = Linterp.create m' in
  let addr = Linterp.alloc_floats st 32 in
  Linterp.write_floats st addr (Array.init 32 float_of_int);
  (match Linterp.run st "f" [ Linterp.RPtr addr ] with
  | Some (Linterp.RFloat v) -> Alcotest.(check (float 1e-9)) "p[2][5]" 21.0 v
  | _ -> Alcotest.fail "bad result")

let test_gep_index_widening () =
  let m =
    parse
      {|define float @f([8 x float]* %p, i32 %i) {
entry:
  %a = getelementptr [8 x float], [8 x float]* %p, i64 0, i32 %i
  %v = load float, float* %a
  ret float %v
}|}
  in
  let stats = A.Canonicalize_geps.fresh_stats () in
  let m' = A.Canonicalize_geps.run ~stats m in
  Lverifier.verify_module m';
  Alcotest.(check int) "index widened" 1 stats.A.Canonicalize_geps.widened

(* ------------------------------------------------------------------ *)
(* Pass 5/6: metadata translation + interfaces                        *)
(* ------------------------------------------------------------------ *)

let test_metadata_translation () =
  let m =
    parse
      {|define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %header ]
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, 8
  br i1 %c, label %header, label %exit !md{llvm.loop.pipeline.ii = 2, llvm.loop.tripcount = 8}
exit:
  ret void
}|}
  in
  let stats = A.Translate_metadata.fresh_stats () in
  let m' = A.Translate_metadata.run ~stats m in
  Lverifier.verify_module m';
  Alcotest.(check int) "one loop translated" 1 stats.A.Translate_metadata.loops;
  Alcotest.(check int) "two markers" 2 stats.A.Translate_metadata.markers;
  let text = Lprinter.module_to_string m' in
  Alcotest.(check bool) "SpecPipeline emitted" true
    (Str_find.contains text "_ssdm_op_SpecPipeline");
  Alcotest.(check bool) "metadata stripped" true
    (not (Str_find.contains text "llvm.loop"))

let test_interface_lowering () =
  let m =
    parse
      {|define void @k(float* %A, i64 %n) attrs(hls.partition.A = "cyclic:4:1") {
entry:
  ret void
}|}
  in
  let m' = A.Interfaces.run ~top:"k" m in
  let f = Lmodule.find_func_exn m' "k" in
  let a = List.hd f.Lmodule.params in
  Alcotest.(check (option string)) "bram interface" (Some "bram")
    (List.assoc_opt "fpga.interface" a.Lmodule.pattrs);
  Alcotest.(check (option string)) "partition factor" (Some "4")
    (List.assoc_opt "fpga.partition.factor" a.Lmodule.pattrs);
  let n = List.nth f.Lmodule.params 1 in
  Alcotest.(check (option string)) "scalar param untouched" None
    (List.assoc_opt "fpga.interface" n.Lmodule.pattrs);
  Alcotest.(check bool) "fattr consumed" true
    (not (List.mem_assoc "hls.partition.A" f.Lmodule.fattrs))

(* ------------------------------------------------------------------ *)
(* Full pipeline                                                      *)
(* ------------------------------------------------------------------ *)

let test_full_adaptor_on_all_kernels () =
  List.iter
    (fun k ->
      let m = k.Workloads.Kernels.build Workloads.Kernels.pipelined in
      let lm = Lowering.Lower.lower_module m in
      let lm = fst (Pass.run_pipeline Pass.default_pipeline lm) in
      let before = A.Compat.check lm in
      Alcotest.(check bool)
        (k.Workloads.Kernels.kname ^ " has issues before")
        true (before <> []);
      let lm', report = A.run_exn lm in
      Alcotest.(check int)
        (k.Workloads.Kernels.kname ^ " has no issues after")
        0
        (List.length report.A.issues_after);
      Alcotest.(check bool)
        (k.Workloads.Kernels.kname ^ " accepted by the HLS front door")
        true
        (Hls_backend.Adaptor_markers.legality_errors lm' = []))
    (Workloads.Kernels.all ())

let test_adaptor_differential_all_kernels () =
  List.iter
    (fun k ->
      let m = k.Workloads.Kernels.build Workloads.Kernels.pipelined in
      let lm = Lowering.Lower.lower_module m in
      let lm_opt = fst (Pass.run_pipeline Pass.default_pipeline lm) in
      let lm', _ = A.run_exn lm_opt in
      let out1 = Flow.run_llvm k lm_opt in
      let out2 = Flow.run_llvm k lm' in
      List.iteri
        (fun i (a, b) ->
          Array.iteri
            (fun j av ->
              if Float.abs (av -. b.(j)) > 1e-9 then
                Alcotest.failf "%s: adaptor changed semantics at arg %d[%d]"
                  k.Workloads.Kernels.kname i j)
            a)
        (List.combine out1 out2))
    (Workloads.Kernels.all ())

let test_strict_mode_rejects_incomplete () =
  let m = gemm_modern () in
  (* descriptor elimination disabled but strict: must raise, carrying
     the complete accumulated diagnostic list *)
  let pipeline =
    match A.Pipeline.disable "eliminate-descriptors" A.Pipeline.default with
    | Ok p -> p
    | Error d -> Alcotest.fail (Support.Diag.to_string d)
  in
  match A.run ~pipeline m with
  | Ok _ -> Alcotest.fail "strict + incomplete must fail"
  | Error ds ->
      Alcotest.(check bool) "carries all findings" true (List.length ds > 1);
      Alcotest.(check bool) "has error severity" true (Support.Diag.errors ds > 0)

let test_compat_summary () =
  let m = gemm_modern () in
  let issues = A.Compat.check m in
  let summary = A.Compat.summarize issues in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 summary in
  Alcotest.(check int) "summary counts all issues" (List.length issues) total;
  Alcotest.(check bool) "opaque-pointer category present" true
    (List.mem_assoc "opaque-pointer" summary)

let suite =
  [
    Alcotest.test_case "legalize smax" `Quick test_legalize_smax;
    Alcotest.test_case "legalize fmuladd" `Quick test_legalize_fmuladd;
    Alcotest.test_case "legalize drops lifetime/assume" `Quick test_legalize_drops_lifetime_assume;
    Alcotest.test_case "legalize freeze" `Quick test_legalize_freeze;
    Alcotest.test_case "descriptors removed" `Quick test_descriptors_detected_and_removed;
    Alcotest.test_case "descriptor elimination semantics" `Quick test_descriptor_elimination_semantics;
    Alcotest.test_case "flat fallback mode" `Quick test_flat_fallback_mode;
    Alcotest.test_case "typed pointer reconstruction" `Quick test_typed_pointer_reconstruction;
    Alcotest.test_case "typed pointers default i8*" `Quick test_typed_pointers_default_i8;
    Alcotest.test_case "gep merge" `Quick test_gep_merge;
    Alcotest.test_case "gep index widening" `Quick test_gep_index_widening;
    Alcotest.test_case "metadata translation" `Quick test_metadata_translation;
    Alcotest.test_case "interface lowering" `Quick test_interface_lowering;
    Alcotest.test_case "full adaptor (all kernels)" `Quick test_full_adaptor_on_all_kernels;
    Alcotest.test_case "adaptor differential (all kernels)" `Quick test_adaptor_differential_all_kernels;
    Alcotest.test_case "strict mode" `Quick test_strict_mode_rejects_incomplete;
    Alcotest.test_case "compat summary" `Quick test_compat_summary;
  ]
