(** Tests for the lint rule registry and the accumulating diagnostics
    engine: rule firing, JSON golden output, exit codes, -Werror, and
    the adaptor's complete-list strict mode. *)

module K = Workloads.Kernels
module Diag = Support.Diag

let parse m = Llvmir.Lparser.parse_module m

let dirs ?(ii = 1) () =
  { K.pipeline_ii = Some ii; unroll = None; strategy = K.Inner; partitions = [] }

let lint_gemm ?only ?(werror = false) ~ii () =
  Flow.lint_kernel ~directives:(dirs ~ii ()) ?only ~werror
    (Option.get (K.by_name "gemm"))

let has_rule r ds = List.exists (fun d -> d.Diag.rule = r) ds

(* --- HLS001: infeasible pipeline II ------------------------------- *)

let test_gemm_ii1_infeasible () =
  let ds = lint_gemm ~ii:1 () in
  Alcotest.(check bool) "HLS001 fires" true (has_rule "HLS001" ds);
  Alcotest.(check int) "exit code 1 (warnings)" 1 (Diag.exit_code ds);
  let d = List.find (fun d -> d.Diag.rule = "HLS001") ds in
  Alcotest.(check (option string)) "function" (Some "gemm") d.Diag.func;
  Alcotest.(check (option string)) "location" (Some "loop3.header")
    d.Diag.location;
  Alcotest.(check bool) "message names the recurrence" true
    (Str_find.contains d.Diag.message "register recurrence")

let test_gemm_ii4_clean () =
  let ds = lint_gemm ~ii:4 () in
  Alcotest.(check bool) "no HLS001 at II 4" false (has_rule "HLS001" ds);
  Alcotest.(check int) "exit code 0" 0 (Diag.exit_code ds)

(* --- JSON golden output ------------------------------------------- *)

let golden_json =
  "{\"diagnostics\": [{\"rule\": \"HLS001\", \"severity\": \"warning\", \
   \"function\": \"gemm\", \"location\": \"loop3.header\", \"message\": \
   \"pipeline II 1 is infeasible: register recurrence through %call needs \
   II >= 4\", \"hint\": \"request II >= 4 or break the recurrence\"}], \
   \"errors\": 0, \"warnings\": 1, \"notes\": 0}"

let test_json_golden () =
  let ds = lint_gemm ~ii:1 () in
  Alcotest.(check string) "stable JSON rendering" golden_json
    (Diag.to_json ds)

(* --- -Werror and rule filtering ----------------------------------- *)

let test_werror () =
  let ds = lint_gemm ~ii:1 ~werror:true () in
  Alcotest.(check int) "warnings promoted to errors" 2 (Diag.exit_code ds);
  Alcotest.(check int) "no warnings left" 0 (Diag.warnings ds)

let test_rule_filter () =
  let ds = lint_gemm ~ii:1 ~only:[ "HLS007" ] () in
  Alcotest.(check bool) "filtered out HLS001" false (has_rule "HLS001" ds);
  let ds = lint_gemm ~ii:1 ~only:[ "HLS001" ] () in
  Alcotest.(check bool) "kept HLS001" true (has_rule "HLS001" ds)

(* --- HLS003: partition vs access pattern -------------------------- *)

let test_partition_conflict () =
  let d =
    {
      K.pipeline_ii = Some 4;
      unroll = None;
      strategy = K.Inner;
      partitions = [ ("A", "cyclic", 4, 1) ];
    }
  in
  let ds = Flow.lint_kernel ~directives:d (Option.get (K.by_name "gemm")) in
  (* inner loop iv does not move along dim 1 of A: every iteration
     lands in the same bank *)
  Alcotest.(check bool) "HLS003 fires" true (has_rule "HLS003" ds);
  let d2 =
    { d with K.partitions = [ ("A", "cyclic", 4, 2) ] }
  in
  let ds2 = Flow.lint_kernel ~directives:d2 (Option.get (K.by_name "gemm")) in
  Alcotest.(check bool) "stride-1 dim is conflict-free" false
    (has_rule "HLS003" ds2)

(* --- HLS004/HLS005/HLS006 on hand-written IR ---------------------- *)

let warty =
  {|define void @top([16 x float]* %out, float* %unused) {
entry:
  %tmp = alloca [16 x float]
  %p0 = getelementptr inbounds [16 x float], [16 x float]* %tmp, i64 0, i64 0
  store float 1.0, float* %p0
  %q = getelementptr inbounds [16 x float], [16 x float]* %out, i64 0, i64 0
  store float 2.0, float* %q
  ret void
island:
  br label %island
}|}

let test_handwritten_rules () =
  let ds = Hls_backend.Lint.run ~top:"top" (parse warty) in
  Alcotest.(check bool) "dead store (HLS004)" true (has_rule "HLS004" ds);
  Alcotest.(check bool) "unused param (HLS005)" true (has_rule "HLS005" ds);
  Alcotest.(check bool) "unreachable block (HLS006)" true
    (has_rule "HLS006" ds);
  let d5 = List.find (fun d -> d.Diag.rule = "HLS005") ds in
  Alcotest.(check (option string)) "names the parameter" (Some "unused")
    d5.Diag.location

(* --- HLS000: broken IR -------------------------------------------- *)

let test_broken_ir () =
  let m =
    parse
      {|define i64 @f(i64 %x) {
entry:
  %y = add i64 %x, %z
  ret i64 %y
}|}
  in
  let ds = Hls_backend.Lint.run m in
  Alcotest.(check bool) "HLS000 fires" true (has_rule "HLS000" ds);
  Alcotest.(check int) "exit code 2 (errors)" 2 (Diag.exit_code ds)

(* --- HLS10x: compat issues re-reported as diagnostics ------------- *)

let test_compat_rules () =
  let m =
    parse
      {|define i64 @f(i64 %x) {
entry:
  %y = freeze i64 %x
  %z = add i64 %y, 1 !md{llvm.loop.unroll.count = 4}
  ret i64 %z
}|}
  in
  let ds = Hls_backend.Lint.run m in
  Alcotest.(check bool) "freeze (HLS104)" true (has_rule "HLS104" ds);
  Alcotest.(check bool) "loop metadata (HLS105)" true (has_rule "HLS105" ds);
  let d104 = List.find (fun d -> d.Diag.rule = "HLS104") ds in
  let d105 = List.find (fun d -> d.Diag.rule = "HLS105") ds in
  Alcotest.(check bool) "freeze is an error" true
    (d104.Diag.severity = Diag.Error);
  Alcotest.(check bool) "metadata only a warning" true
    (d105.Diag.severity = Diag.Warning)

(* --- adaptor strict mode reports the complete list ---------------- *)

let test_adaptor_complete_list () =
  let k = Option.get (K.by_name "gemm") in
  let m = k.K.build (dirs ~ii:1 ()) in
  (* without descriptor elimination the output keeps descriptors and
     opaque pointers: non-strict run accumulates them in the report *)
  let _, report, _ =
    Flow_util.frontend_exn
      ~pipeline:Adaptor.Pipeline.no_descriptor_elimination m
  in
  let n = List.length report.Adaptor.diagnostics in
  Alcotest.(check bool) "multiple diagnostics accumulated" true (n > 1);
  (* strict run raises with the same complete list, not just the head *)
  let strict_p =
    {
      Adaptor.Pipeline.no_descriptor_elimination with
      Adaptor.Pipeline.strict = true;
    }
  in
  match Flow.direct_ir_frontend ~pipeline:strict_p m with
  | Ok _ -> Alcotest.fail "strict adaptor should have failed"
  | Error ds ->
      Alcotest.(check int) "complete accumulated list" n (List.length ds);
      Alcotest.(check bool) "only error severities block" true
        (Diag.errors ds > 0)

(* --- HLS008/HLS009/HLS010: alias & effect rules ------------------- *)

(* %A is partitioned but also stored through a phi-selected pointer
   the alias oracle cannot attribute to a single array *)
let aliased_partition =
  {|define void @top([64 x float]* %A attrs(fpga.partition.factor = "4"), [64 x float]* %B, i1 %c) {
entry:
  br i1 %c, label %l, label %r
l:
  br label %j
r:
  br label %j
j:
  %ptr = phi [64 x float]* [ %A, %l ], [ %B, %r ]
  %pl = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 0
  %v = load float, float* %pl
  %ps = getelementptr inbounds [64 x float], [64 x float]* %ptr, i64 0, i64 1
  store float %v, float* %ps
  ret void
}|}

let test_aliased_partition () =
  let ds = Hls_backend.Lint.run ~top:"top" (parse aliased_partition) in
  Alcotest.(check bool) "HLS008 fires" true (has_rule "HLS008" ds);
  let d = List.find (fun d -> d.Diag.rule = "HLS008") ds in
  Alcotest.(check (option string)) "names the partitioned array" (Some "A")
    d.Diag.location;
  (* direct accesses only: the directive is fine *)
  let clean =
    parse
      {|define void @top([64 x float]* %A attrs(fpga.partition.factor = "4")) {
entry:
  %pl = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 0
  %v = load float, float* %pl
  %ps = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 1
  store float %v, float* %ps
  ret void
}|}
  in
  Alcotest.(check bool) "direct accesses, no HLS008" false
    (has_rule "HLS008" (Hls_backend.Lint.run ~top:"top" clean))

let shared_global =
  {|@acc = global i64 0
define void @bump_a(i64 %x) {
entry:
  %v = load i64, i64* @acc
  %w = add i64 %v, %x
  store i64 %w, i64* @acc
  ret void
}
define void @bump_b(i64 %x) {
entry:
  %v = load i64, i64* @acc
  %w = mul i64 %v, %x
  store i64 %w, i64* @acc
  ret void
}|}

let test_global_conflict () =
  let ds = Hls_backend.Lint.run (parse shared_global) in
  Alcotest.(check bool) "HLS009 fires" true (has_rule "HLS009" ds);
  let d = List.find (fun d -> d.Diag.rule = "HLS009") ds in
  Alcotest.(check bool) "message names both writers and the global" true
    (Str_find.contains d.Diag.message "@bump_a"
    && Str_find.contains d.Diag.message "@bump_b"
    && Str_find.contains d.Diag.message "@acc")

let unknown_callee =
  {|declare void @mystery(i64)
define void @helper(i64 %n) {
entry:
  ret void
}
define void @top(i64 %n) {
entry:
  call void @helper(i64 %n)
  call void @mystery(i64 %n)
  ret void
}|}

let test_unknown_callee () =
  let ds = Hls_backend.Lint.run ~top:"top" (parse unknown_callee) in
  let d10 = List.filter (fun d -> d.Diag.rule = "HLS010") ds in
  Alcotest.(check int) "exactly the undefined callee flagged" 1
    (List.length d10);
  Alcotest.(check bool) "message names @mystery" true
    (Str_find.contains (List.hd d10).Diag.message "@mystery")

let test_kernels_clean_on_new_rules () =
  let ds = lint_gemm ~ii:4 ~only:[ "HLS008"; "HLS009"; "HLS010" ] () in
  Alcotest.(check int) "gemm clean under the alias/effect rules" 0
    (Diag.exit_code ds)

(* --- diag engine unit checks -------------------------------------- *)

let test_diag_engine () =
  let w = Diag.warning ~rule:"HLS999" "w %d" 1 in
  let e = Diag.error ~rule:"HLS998" "e" in
  let n = Diag.note ~rule:"HLS997" "n" in
  let ds = [ w; e; n ] in
  Alcotest.(check int) "errors" 1 (Diag.errors ds);
  Alcotest.(check int) "warnings" 1 (Diag.warnings ds);
  Alcotest.(check int) "exit code" 2 (Diag.exit_code ds);
  (* sort puts the error first *)
  Alcotest.(check string) "sorted" "HLS998" (List.hd (Diag.sort ds)).Diag.rule;
  (* promote_warnings flips only the warning *)
  let p = Diag.promote_warnings ds in
  Alcotest.(check int) "promoted" 2 (Diag.errors p);
  Alcotest.(check int) "notes untouched" 1 (Diag.count Diag.Note p);
  (* render mentions every rule, summary counts *)
  let txt = Diag.render ds in
  Alcotest.(check bool) "render lists rules" true
    (Str_find.contains txt "HLS999" && Str_find.contains txt "HLS998");
  Alcotest.(check bool) "summary line" true
    (Str_find.contains txt "1 error(s), 1 warning(s), 1 note(s)");
  (* JSON escaping *)
  let tricky = Diag.warning ~rule:"X" "quote \" and\nnewline" in
  Alcotest.(check bool) "escaped" true
    (Str_find.contains (Diag.diag_to_json tricky) "quote \\\" and\\nnewline")

let suite =
  [
    Alcotest.test_case "gemm II 1 infeasible" `Quick test_gemm_ii1_infeasible;
    Alcotest.test_case "gemm II 4 clean" `Quick test_gemm_ii4_clean;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "werror" `Quick test_werror;
    Alcotest.test_case "rule filter" `Quick test_rule_filter;
    Alcotest.test_case "partition conflict" `Quick test_partition_conflict;
    Alcotest.test_case "handwritten rules" `Quick test_handwritten_rules;
    Alcotest.test_case "broken IR" `Quick test_broken_ir;
    Alcotest.test_case "compat rules" `Quick test_compat_rules;
    Alcotest.test_case "adaptor complete list" `Quick
      test_adaptor_complete_list;
    Alcotest.test_case "aliased partition (HLS008)" `Quick
      test_aliased_partition;
    Alcotest.test_case "global conflict (HLS009)" `Quick test_global_conflict;
    Alcotest.test_case "unknown callee (HLS010)" `Quick test_unknown_callee;
    Alcotest.test_case "kernels clean on new rules" `Quick
      test_kernels_clean_on_new_rules;
    Alcotest.test_case "diag engine" `Quick test_diag_engine;
  ]
