(** Additional LLVM-substrate coverage: globals, module utilities,
    printer/parser edge cases. *)

open Llvmir

let test_globals_roundtrip () =
  let text =
    {|@table = constant [4 x float] zeroinitializer
@counter = global i64 0
define i64 @f() {
entry:
  %v = load i64, i64* @counter
  ret i64 %v
}|}
  in
  let m = Lparser.parse_module text in
  Alcotest.(check int) "two globals" 2 (List.length m.Lmodule.globals);
  let g = List.find (fun (g : Lmodule.global) -> g.Lmodule.gname = "table") m.Lmodule.globals in
  Alcotest.(check bool) "constant flag" true g.Lmodule.gconst;
  let t2 = Lprinter.module_to_string m in
  let m2 = Lparser.parse_module t2 in
  Alcotest.(check int) "roundtrip keeps globals" 2 (List.length m2.Lmodule.globals)

let test_globals_interpreted () =
  let text =
    {|@acc = global i64 0
define void @bump() {
entry:
  %v = load i64, i64* @acc
  %v2 = add i64 %v, 5
  store i64 %v2, i64* @acc
  ret void
}
define i64 @read() {
entry:
  %v = load i64, i64* @acc
  ret i64 %v
}|}
  in
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  let st = Linterp.create m in
  ignore (Linterp.run st "bump" []);
  ignore (Linterp.run st "bump" []);
  (match Linterp.run st "read" [] with
  | Some (Linterp.RInt 10) -> ()
  | Some (Linterp.RInt v) -> Alcotest.failf "expected 10, got %d" v
  | _ -> Alcotest.fail "bad result")

let test_ensure_decl_idempotent () =
  let m = Lmodule.empty "m" in
  let d = { Lmodule.dname = "foo"; dret = Ltype.Void; dargs = [] } in
  let m = Lmodule.ensure_decl m d in
  let m = Lmodule.ensure_decl m d in
  Alcotest.(check int) "declared once" 1 (List.length m.Lmodule.decls)

let test_use_counts () =
  let sym = Support.Interner.intern in
  let m =
    Lparser.parse_module
      {|define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, %x
  %b = add i64 %a, %x
  ret i64 %b
}|}
  in
  let f = Lmodule.find_func_exn m "f" in
  let idx = Findex.build f in
  Alcotest.(check int) "x used 3 times" 3 (Findex.use_count idx (sym "x"));
  Alcotest.(check int) "a used once" 1 (Findex.use_count idx (sym "a"))

let test_substitute_transitive () =
  let m =
    Lparser.parse_module
      {|define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, 1
  ret i64 %a
}|}
  in
  let f = Lmodule.find_func_exn m "f" in
  let sym = Support.Interner.intern in
  let subst = Support.Interner.Tbl.create 2 in
  Support.Interner.Tbl.replace subst (sym "a") (Lvalue.reg "b" Ltype.I64);
  Support.Interner.Tbl.replace subst (sym "b") (Lvalue.ci64 7);
  let f' = Findex.substitute_func subst f in
  let ret_operand =
    Lmodule.fold_insts
      (fun acc (i : Linstr.t) ->
        match i.Linstr.op with Linstr.Ret (Some v) -> Some v | _ -> acc)
      None f'
  in
  Alcotest.(check bool) "chained substitution resolves" true
    (ret_operand = Some (Lvalue.ci64 7))

let test_printer_negative_floats () =
  let text =
    {|define float @f() {
entry:
  %a = fadd float -2.5, 1.0
  ret float %a
}|}
  in
  let m = Lparser.parse_module text in
  let m2 = Lparser.parse_module (Lprinter.module_to_string m) in
  let st = Linterp.create m2 in
  (match Linterp.run st "f" [] with
  | Some (Linterp.RFloat v) -> Alcotest.(check (float 1e-9)) "-2.5+1" (-1.5) v
  | _ -> Alcotest.fail "bad result")

let test_printer_metadata_roundtrip () =
  let text =
    {|define void @f() {
entry:
  br label %l !md{llvm.loop.unroll.count = 4, note = "hot"}
l:
  ret void
}|}
  in
  let m = Lparser.parse_module text in
  let f = Lmodule.find_func_exn m "f" in
  let entry = Lmodule.entry f in
  let term = List.hd (List.rev entry.Lmodule.insts) in
  Alcotest.(check int) "two metadata entries" 2 (List.length term.Linstr.imeta);
  let m2 = Lparser.parse_module (Lprinter.module_to_string m) in
  let f2 = Lmodule.find_func_exn m2 "f" in
  let term2 = List.hd (List.rev (Lmodule.entry f2).Lmodule.insts) in
  Alcotest.(check bool) "metadata round-trips" true
    (term.Linstr.imeta = term2.Linstr.imeta)

let test_param_attrs_roundtrip () =
  let text =
    {|define void @f(float* %p attrs(fpga.interface = "bram", fpga.partition.factor = "4")) {
entry:
  ret void
}|}
  in
  let m = Lparser.parse_module text in
  let m2 = Lparser.parse_module (Lprinter.module_to_string m) in
  let p = List.hd (Lmodule.find_func_exn m2 "f").Lmodule.params in
  Alcotest.(check int) "two attrs survive" 2 (List.length p.Lmodule.pattrs)

let test_double_precision_ops () =
  let text =
    {|define double @f(double %x) {
entry:
  %a = fmul double %x, 2.0
  %b = fadd double %a, 0.5
  ret double %b
}|}
  in
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  let st = Linterp.create m in
  (match Linterp.run st "f" [ Linterp.RFloat 3.25 ] with
  | Some (Linterp.RFloat v) -> Alcotest.(check (float 1e-12)) "3.25*2+0.5" 7.0 v
  | _ -> Alcotest.fail "bad result");
  (* double ops cost more in the operator model *)
  let fadd_f32 =
    Linstr.make ~result:"a" ~ty:Ltype.Float
      (Linstr.FBin (Linstr.FAdd, Lvalue.cf 1.0, Lvalue.cf 2.0))
  in
  let fadd_f64 =
    Linstr.make ~result:"a" ~ty:Ltype.Double
      (Linstr.FBin
         (Linstr.FAdd, Lvalue.cf ~ty:Ltype.Double 1.0, Lvalue.cf ~ty:Ltype.Double 2.0))
  in
  let _, c32 = Hls_backend.Op_model.classify fadd_f32 in
  let _, c64 = Hls_backend.Op_model.classify fadd_f64 in
  Alcotest.(check bool) "double fadd is deeper" true
    (c64.Hls_backend.Op_model.latency > c32.Hls_backend.Op_model.latency)

let suite =
  [
    Alcotest.test_case "globals roundtrip" `Quick test_globals_roundtrip;
    Alcotest.test_case "globals interpreted" `Quick test_globals_interpreted;
    Alcotest.test_case "ensure_decl idempotent" `Quick test_ensure_decl_idempotent;
    Alcotest.test_case "use counts" `Quick test_use_counts;
    Alcotest.test_case "substitute transitive" `Quick test_substitute_transitive;
    Alcotest.test_case "negative floats" `Quick test_printer_negative_floats;
    Alcotest.test_case "metadata roundtrip" `Quick test_printer_metadata_roundtrip;
    Alcotest.test_case "param attrs roundtrip" `Quick test_param_attrs_roundtrip;
    Alcotest.test_case "double precision" `Quick test_double_precision_ops;
  ]
