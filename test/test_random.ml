(** Randomized differential testing: generate random kernels, push them
    through {e every} stage of both flows, and require bit-identical
    outputs from
    - the mhir interpreter,
    - the modern-lowered LLVM IR,
    - the adaptor's HLS-ready IR,
    - the HLS C++ round-trip IR.

    The generated programs use wrap-around affine subscripts
    ([A[(i+di) mod 8][(j+dj) mod 8]]), float min/max/select and optional
    reduction loops, covering the constructs the hand-written kernels
    exercise plus the ones they don't (mod arithmetic, selects). *)

open Mhir

let n = 8

(** Expression description (pure data, shrinkable by QCheck). *)
type rexpr =
  | Rconst of float
  | Rload_a of int * int  (** A[(i+di) mod n][(j+dj) mod n] *)
  | Rload_x of int  (** x[(i+d) mod n] *)
  | Radd of rexpr * rexpr
  | Rsub of rexpr * rexpr
  | Rmul of rexpr * rexpr
  | Rmax of rexpr * rexpr
  | Rmin of rexpr * rexpr
  | Rselect of rexpr * rexpr * rexpr  (** if e1 < e2 then e2 else e3... *)

type rkernel = {
  body : rexpr;
  reduce : rexpr option;  (** when set, add a k-loop summing this *)
  pipeline : bool;
}

(* ------------------------------------------------------------------ *)
(* Generator                                                          *)
(* ------------------------------------------------------------------ *)

let gen_expr : rexpr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (1, map (fun f -> Rconst (float_of_int f /. 4.0)) (int_range (-8) 8));
        (3, map2 (fun a b -> Rload_a (a, b)) (int_range 0 (n - 1)) (int_range 0 (n - 1)));
        (2, map (fun d -> Rload_x d) (int_range 0 (n - 1)));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map2 (fun a b -> Radd (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Rsub (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Rmul (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Rmax (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Rmin (a, b)) (self (depth - 1)) (self (depth - 1)));
            ( 1,
              map3
                (fun a b c -> Rselect (a, b, c))
                (self (depth - 1)) (self (depth - 1)) (self (depth - 1)) );
          ])
    3

let gen_kernel : rkernel QCheck.Gen.t =
  let open QCheck.Gen in
  map3
    (fun body reduce pipeline -> { body; reduce; pipeline })
    gen_expr
    (opt gen_expr)
    bool

let arb_kernel = QCheck.make gen_kernel

(* ------------------------------------------------------------------ *)
(* Building the mhir module                                           *)
(* ------------------------------------------------------------------ *)

let wrap_map di dj =
  (* (d0, d1) -> ((d0 + di) mod n, (d1 + dj) mod n) *)
  Affine_map.make ~num_dims:2 ~num_syms:0
    [
      Affine_expr.modulo
        (Affine_expr.add (Affine_expr.dim 0) (Affine_expr.const di))
        (Affine_expr.const n);
      Affine_expr.modulo
        (Affine_expr.add (Affine_expr.dim 1) (Affine_expr.const dj))
        (Affine_expr.const n);
    ]

let wrap_map1 d =
  Affine_map.make ~num_dims:1 ~num_syms:0
    [
      Affine_expr.modulo
        (Affine_expr.add (Affine_expr.dim 0) (Affine_expr.const d))
        (Affine_expr.const n);
    ]

let rec build_expr b ~a ~x ~i ~j (e : rexpr) : Ir.value =
  let sub = build_expr b ~a ~x ~i ~j in
  match e with
  | Rconst f -> Builder.constant_f b f
  | Rload_a (di, dj) -> Builder.affine_load b a ~map:(wrap_map di dj) [ i; j ]
  | Rload_x d -> Builder.affine_load b x ~map:(wrap_map1 d) [ i ]
  | Radd (p, q) -> Builder.addf b (sub p) (sub q)
  | Rsub (p, q) -> Builder.subf b (sub p) (sub q)
  | Rmul (p, q) -> Builder.mulf b (sub p) (sub q)
  | Rmax (p, q) -> Builder.maxf b (sub p) (sub q)
  | Rmin (p, q) -> Builder.minf b (sub p) (sub q)
  | Rselect (p, q, r) ->
      let vp = sub p and vq = sub q and vr = sub r in
      let c = Builder.cmpf b Builder.Olt vp vq in
      Builder.select b c vq vr

let build_module (rk : rkernel) : Ir.modul =
  let b = Builder.create () in
  let mty = Types.memref [ n; n ] in
  let vty = Types.memref [ n ] in
  let attrs = if rk.pipeline then [ ("hls.pipeline", Attr.Int 1) ] else [] in
  let f =
    Builder.func b "rnd"
      ~args:[ ("A", mty); ("x", vty); ("y", mty) ]
      ~ret_tys:[]
      (fun b args ->
        match args with
        | [ a; x; y ] ->
            ignore
              (Builder.affine_for b ~lb:0 ~ub:n (fun b i _ ->
                   ignore
                     (Builder.affine_for b ~lb:0 ~ub:n ~attrs (fun b j _ ->
                          let base = build_expr b ~a ~x ~i ~j rk.body in
                          let result =
                            match rk.reduce with
                            | None -> base
                            | Some re ->
                                let acc =
                                  Builder.affine_for b ~lb:0 ~ub:4
                                    ~iters:[ base ] (fun b k iters ->
                                      (* reuse k as a shifted row index *)
                                      let term =
                                        build_expr b ~a ~x ~i:k ~j re
                                      in
                                      [ Builder.addf b (List.hd iters) term ])
                                in
                                List.hd acc
                          in
                          Builder.store b result y [ i; j ];
                          []));
                   []));
            Builder.ret b []
        | _ -> assert false)
  in
  { Ir.funcs = [ f ] }

(* ------------------------------------------------------------------ *)
(* The differential property                                          *)
(* ------------------------------------------------------------------ *)

let inputs () =
  let mk seed size =
    match Interp.random_fbuf ~seed [ size ] with
    | Interp.Buf b -> b.Interp.fdata
    | _ -> assert false
  in
  (mk 11 (n * n), mk 13 n, Array.make (n * n) 0.0)

let run_mhir m =
  let adata, xdata, _ = inputs () in
  let mk shape data =
    let b = Interp.alloc_buffer (Array.of_list shape) Types.F32 in
    Array.blit data 0 b.Interp.fdata 0 (Array.length data);
    Interp.Buf b
  in
  let a = mk [ n; n ] adata in
  let x = mk [ n ] xdata in
  let y = mk [ n; n ] (Array.make (n * n) 0.0) in
  ignore (Interp.run_func m "rnd" [ a; x; y ]);
  match y with Interp.Buf b -> Array.copy b.Interp.fdata | _ -> assert false

let run_llvm lm =
  let adata, xdata, _ = inputs () in
  let st = Llvmir.Linterp.create lm in
  let aa = Llvmir.Linterp.alloc_floats st (n * n) in
  let ax = Llvmir.Linterp.alloc_floats st n in
  let ay = Llvmir.Linterp.alloc_floats st (n * n) in
  Llvmir.Linterp.write_floats st aa adata;
  Llvmir.Linterp.write_floats st ax xdata;
  ignore
    (Llvmir.Linterp.run st "rnd"
       Llvmir.Linterp.[ RPtr aa; RPtr ax; RPtr ay ]);
  Llvmir.Linterp.read_floats st ay (n * n)

let agree a b = Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x)) a b

let prop_all_stages_agree =
  QCheck.Test.make ~name:"random kernels: all flow stages agree" ~count:25
    arb_kernel (fun rk ->
      let m = build_module rk in
      Verifier.verify_module m;
      let expected = run_mhir m in
      (* modern lowering *)
      let lowered = Lowering.Lower.lower_module (Canonicalize.run m) in
      Llvmir.Lverifier.verify_module lowered;
      let opt = fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline lowered) in
      (* adaptor *)
      let adapted, _ = Adaptor.run_exn opt in
      (* C++ round-trip *)
      let cpp = Hlscpp.Emit.emit_module (Canonicalize.run m) in
      let cpp_ir = Hlscpp.Ccodegen.compile cpp in
      let cpp_opt = fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline cpp_ir) in
      agree expected (run_llvm lowered)
      && agree expected (run_llvm opt)
      && agree expected (run_llvm adapted)
      && agree expected (run_llvm cpp_opt))

let prop_roundtrip_random_modules =
  QCheck.Test.make ~name:"random kernels: generic text round-trips" ~count:25
    arb_kernel (fun rk ->
      let m = build_module rk in
      let t1 = Printer.module_to_string ~generic:true m in
      let m2 = Parser.parse_module t1 in
      Verifier.verify_module m2;
      Printer.module_to_string ~generic:true m2 = t1)

let prop_adapted_always_legal =
  QCheck.Test.make ~name:"random kernels: adaptor output always HLS-legal"
    ~count:25 arb_kernel (fun rk ->
      let m = build_module rk in
      let lowered = Lowering.Lower.lower_module (Canonicalize.run m) in
      let opt = fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline lowered) in
      let adapted, _ = Adaptor.run_exn opt in
      Hls_backend.Adaptor_markers.legality_errors adapted = [])

let prop_synthesis_total =
  QCheck.Test.make ~name:"random kernels: synthesis never fails" ~count:25
    arb_kernel (fun rk ->
      let m = build_module rk in
      let lowered = Lowering.Lower.lower_module (Canonicalize.run m) in
      let opt = fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline lowered) in
      let adapted, _ = Adaptor.run_exn opt in
      let r = Hls_backend.Estimate.synthesize ~top:"rnd" adapted in
      r.Hls_backend.Estimate.latency > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_all_stages_agree;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_modules;
    QCheck_alcotest.to_alcotest prop_adapted_always_legal;
    QCheck_alcotest.to_alcotest prop_synthesis_total;
  ]
