(** Tests for the LLVM-side analyses: CFG, dominance, loop detection
    and trip-count pattern matching. *)

open Llvmir

let parse_fn text =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  List.hd m.Lmodule.funcs

let diamond =
  {|define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret i64 0
}|}

let loop_fn =
  {|define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %c = icmp slt i64 %i, 10
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret void
}|}

let nested_loops =
  {|define void @f() {
entry:
  br label %h1
h1:
  %i = phi i64 [ 0, %entry ], [ %i.next, %l1 ]
  %c1 = icmp slt i64 %i, 4
  br i1 %c1, label %b1, label %x1
b1:
  br label %h2
h2:
  %j = phi i64 [ 0, %b1 ], [ %j.next, %l2 ]
  %c2 = icmp slt i64 %j, 8
  br i1 %c2, label %b2, label %x2
b2:
  br label %l2
l2:
  %j.next = add i64 %j, 1
  br label %h2
x2:
  br label %l1
l1:
  %i.next = add i64 %i, 2
  br label %h1
x1:
  ret void
}|}

let test_cfg_edges () =
  let f = parse_fn diamond in
  let cfg = Cfg.build f in
  let entry = Cfg.index_of_exn cfg "entry" in
  let join = Cfg.index_of_exn cfg "join" in
  Alcotest.(check int) "entry has two successors" 2
    (List.length cfg.Cfg.succs.(entry));
  Alcotest.(check int) "join has two predecessors" 2
    (List.length cfg.Cfg.preds.(join));
  Alcotest.(check int) "rpo covers all blocks" 4
    (List.length (Cfg.reverse_postorder cfg))

let test_dominance_diamond () =
  let f = parse_fn diamond in
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  let i l = Cfg.index_of_exn cfg l in
  Alcotest.(check bool) "entry dominates join" true
    (Dominance.dominates dom (i "entry") (i "join"));
  Alcotest.(check bool) "a does not dominate join" false
    (Dominance.dominates dom (i "a") (i "join"));
  Alcotest.(check bool) "reflexive" true (Dominance.dominates dom (i "a") (i "a"));
  Alcotest.(check int) "idom(join) = entry" (i "entry") dom.Dominance.idom.(i "join")

let test_dominance_frontiers () =
  let f = parse_fn diamond in
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  let df = Dominance.frontiers dom in
  let i l = Cfg.index_of_exn cfg l in
  Alcotest.(check (list int)) "DF(a) = {join}" [ i "join" ] df.(i "a");
  Alcotest.(check (list int)) "DF(b) = {join}" [ i "join" ] df.(i "b");
  Alcotest.(check (list int)) "DF(entry) = {}" [] df.(i "entry")

let test_loop_detection () =
  let f = parse_fn loop_fn in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  Alcotest.(check int) "one loop" 1 (Array.length li.Loop_info.loops);
  let l = li.Loop_info.loops.(0) in
  Alcotest.(check string) "header label" "header"
    (Support.Interner.name (Cfg.label cfg l.Loop_info.header));
  Alcotest.(check int) "loop body size" 3 (List.length l.Loop_info.body);
  Alcotest.(check int) "depth 1" 1 l.Loop_info.depth

let test_nested_loop_structure () =
  let f = parse_fn nested_loops in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  Alcotest.(check int) "two loops" 2 (Array.length li.Loop_info.loops);
  let depths =
    List.sort compare
      (Array.to_list (Array.map (fun l -> l.Loop_info.depth) li.Loop_info.loops))
  in
  Alcotest.(check (list int)) "depths 1 and 2" [ 1; 2 ] depths;
  (* parent/child agree *)
  Array.iteri
    (fun j l ->
      match l.Loop_info.parent with
      | Some p ->
          Alcotest.(check bool) "child registered in parent" true
            (List.mem j li.Loop_info.loops.(p).Loop_info.children)
      | None -> ())
    li.Loop_info.loops

let test_trip_counts () =
  let f = parse_fn loop_fn in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  Alcotest.(check (option int)) "trip count 10" (Some 10) (Loop_info.trip_count li 0)

let test_trip_count_with_step () =
  let f = parse_fn nested_loops in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  let counts =
    List.sort compare
      (List.filter_map
         (fun j -> Loop_info.trip_count li j)
         (List.init (Array.length li.Loop_info.loops) Fun.id))
  in
  (* outer: (4-0+1)/2 = 2, inner: 8 *)
  Alcotest.(check (list int)) "trip counts with step" [ 2; 8 ] counts

let test_unreachable_blocks () =
  let f =
    parse_fn
      {|define void @f() {
entry:
  ret void
island:
  br label %island
}|}
  in
  let cfg = Cfg.build f in
  Alcotest.(check int) "one unreachable block" 1
    (List.length (Cfg.unreachable_blocks cfg))

let test_lowered_gemm_loops () =
  (* end-to-end: lowering the gemm kernel yields a 3-deep loop nest *)
  let m =
    (Workloads.Kernels.gemm ()).Workloads.Kernels.build
      Workloads.Kernels.no_directives
  in
  let lm = Lowering.Lower.lower_module m in
  let f = Lmodule.find_func_exn lm "gemm" in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  Alcotest.(check int) "three loops" 3 (Array.length li.Loop_info.loops);
  let max_depth =
    Array.fold_left (fun acc l -> max acc l.Loop_info.depth) 0 li.Loop_info.loops
  in
  Alcotest.(check int) "max depth 3" 3 max_depth

let suite =
  [
    Alcotest.test_case "cfg edges" `Quick test_cfg_edges;
    Alcotest.test_case "dominance diamond" `Quick test_dominance_diamond;
    Alcotest.test_case "dominance frontiers" `Quick test_dominance_frontiers;
    Alcotest.test_case "loop detection" `Quick test_loop_detection;
    Alcotest.test_case "nested loops" `Quick test_nested_loop_structure;
    Alcotest.test_case "trip counts" `Quick test_trip_counts;
    Alcotest.test_case "trip count with step" `Quick test_trip_count_with_step;
    Alcotest.test_case "unreachable blocks" `Quick test_unreachable_blocks;
    Alcotest.test_case "lowered gemm loop nest" `Quick test_lowered_gemm_loops;
  ]
