(** Tests for the generic dataflow framework: liveness and reaching
    definitions on diamond/loop CFGs, and dead-store detection. *)

open Llvmir
module SS = Dataflow.SymSet

let sym = Support.Interner.intern

let parse_fn text =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  List.hd m.Lmodule.funcs

let idx cfg l = Cfg.index_of_exn cfg l

let diamond =
  {|define i64 @f(i1 %c, i64 %x, i64 %y) {
entry:
  %a = add i64 %x, 1
  br i1 %c, label %l, label %r
l:
  %b = add i64 %a, 2
  br label %join
r:
  br label %join
join:
  %p = phi i64 [ %b, %l ], [ %y, %r ]
  ret i64 %p
}|}

let test_liveness_diamond () =
  let cfg = Cfg.build (parse_fn diamond) in
  let lv = Dataflow.liveness cfg in
  let mem r b = SS.mem (sym r) lv.Dataflow.live_in.(idx cfg b) in
  let memo r b = SS.mem (sym r) lv.Dataflow.live_out.(idx cfg b) in
  Alcotest.(check bool) "a live into l" true (mem "a" "l");
  Alcotest.(check bool) "a dead into r" false (mem "a" "r");
  (* phi operands are edge uses: %y is live out of r, %b out of l,
     and neither is live into join *)
  Alcotest.(check bool) "y live into r" true (mem "y" "r");
  Alcotest.(check bool) "b live out of l" true (memo "b" "l");
  Alcotest.(check bool) "b not live into join" false (mem "b" "join");
  Alcotest.(check bool) "y not live into join" false (mem "y" "join");
  Alcotest.(check bool) "y live out of entry" true (memo "y" "entry");
  Alcotest.(check bool) "nothing live out of join" true
    (SS.is_empty lv.Dataflow.live_out.(idx cfg "join"))

let loop_fn =
  {|define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %c = icmp slt i64 %i, 10
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret void
}|}

let test_liveness_loop () =
  let cfg = Cfg.build (parse_fn loop_fn) in
  let lv = Dataflow.liveness cfg in
  let mem r b = SS.mem (sym r) lv.Dataflow.live_in.(idx cfg b) in
  (* %i flows around the loop: used in the latch, so live through body *)
  Alcotest.(check bool) "i live into body" true (mem "i" "body");
  Alcotest.(check bool) "i live into latch" true (mem "i" "latch");
  Alcotest.(check bool) "i dead into exit" false (mem "i" "exit");
  (* %i.next is consumed by the back-edge phi use inside the latch *)
  Alcotest.(check bool) "i.next not live into latch" false
    (mem "i.next" "latch")

let test_reaching_defs () =
  let cfg = Cfg.build (parse_fn diamond) in
  let rd = Dataflow.reaching_definitions cfg in
  let reaches name b =
    Dataflow.DefSet.exists
      (fun (n, _, _) -> n = sym name)
      rd.Dataflow.reach_in.(idx cfg b)
  in
  Alcotest.(check bool) "b reaches join" true (reaches "b" "join");
  Alcotest.(check bool) "b does not reach r" false (reaches "b" "r");
  Alcotest.(check bool) "a reaches both arms" true
    (reaches "a" "l" && reaches "a" "r");
  (* parameters reach everywhere *)
  Alcotest.(check bool) "param x reaches join" true (reaches "x" "join")

let dead_store_fn =
  {|define void @f([16 x float]* %out) {
entry:
  %tmp = alloca [16 x float]
  %p0 = getelementptr inbounds [16 x float], [16 x float]* %tmp, i64 0, i64 0
  store float 1.0, float* %p0
  %q = getelementptr inbounds [16 x float], [16 x float]* %out, i64 0, i64 0
  store float 2.0, float* %q
  ret void
}|}

let test_dead_store_found () =
  let cfg = Cfg.build (parse_fn dead_store_fn) in
  let ds = Dataflow.dead_stores cfg in
  Alcotest.(check int) "one dead store" 1 (List.length ds);
  Alcotest.(check string) "to the local alloca" "tmp"
    (List.hd ds).Dataflow.ds_array

let live_store_fn =
  {|define void @f([16 x float]* %out) {
entry:
  %tmp = alloca [16 x float]
  %p0 = getelementptr inbounds [16 x float], [16 x float]* %tmp, i64 0, i64 0
  store float 1.0, float* %p0
  %v = load float, float* %p0
  %q = getelementptr inbounds [16 x float], [16 x float]* %out, i64 0, i64 0
  store float %v, float* %q
  ret void
}|}

let test_read_store_not_flagged () =
  let cfg = Cfg.build (parse_fn live_store_fn) in
  Alcotest.(check int) "no dead stores" 0
    (List.length (Dataflow.dead_stores cfg))

let escaping_fn =
  {|declare void @use(float*)
define void @f() {
entry:
  %tmp = alloca [16 x float]
  %p0 = getelementptr inbounds [16 x float], [16 x float]* %tmp, i64 0, i64 0
  store float 1.0, float* %p0
  call void @use(float* %p0)
  ret void
}|}

let test_escaping_store_not_flagged () =
  let cfg = Cfg.build (parse_fn escaping_fn) in
  Alcotest.(check int) "escaping alloca not flagged" 0
    (List.length (Dataflow.dead_stores cfg))

(* a store that a branch may kill is still live on the other path *)
let branchy_fn =
  {|define float @f(i1 %c) {
entry:
  %tmp = alloca [16 x float]
  %p0 = getelementptr inbounds [16 x float], [16 x float]* %tmp, i64 0, i64 0
  store float 1.0, float* %p0
  br i1 %c, label %yes, label %no
yes:
  %v = load float, float* %p0
  br label %join
no:
  br label %join
join:
  %r = phi float [ %v, %yes ], [ 0.0, %no ]
  ret float %r
}|}

let test_may_read_keeps_store () =
  let cfg = Cfg.build (parse_fn branchy_fn) in
  Alcotest.(check int) "store read on one path is live" 0
    (List.length (Dataflow.dead_stores cfg))

let suite =
  [
    Alcotest.test_case "liveness diamond" `Quick test_liveness_diamond;
    Alcotest.test_case "liveness loop" `Quick test_liveness_loop;
    Alcotest.test_case "reaching definitions" `Quick test_reaching_defs;
    Alcotest.test_case "dead store found" `Quick test_dead_store_found;
    Alcotest.test_case "read store kept" `Quick test_read_store_not_flagged;
    Alcotest.test_case "escaping store kept" `Quick
      test_escaping_store_not_flagged;
    Alcotest.test_case "may-read keeps store" `Quick test_may_read_keeps_store;
  ]
