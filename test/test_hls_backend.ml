(** Tests for the HLS backend: legality gate, directive extraction,
    scheduling behaviour (chaining, ports, recurrences), latency
    formulas, and resource estimation. *)

open Llvmir
module E = Hls_backend.Estimate
module D = Hls_backend.Directives

let parse text =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  m

let synth ?clock_ns ~top text = E.synthesize ?clock_ns ~top (parse text)

(** A pipelined counted loop over [n] iterations whose body is given as
    IR text (may use %i); markers control pipeline/tripcount. *)
let loop_fn ?(pipeline = false) ~n body =
  Printf.sprintf
    {|%s
declare void @_ssdm_op_SpecLoopTripCount(i64)
define void @f(float* %%p attrs(fpga.interface = "bram")) {
entry:
  br label %%header
header:
  %%i = phi i64 [ 0, %%entry ], [ %%i.next, %%latch ]
  call void @_ssdm_op_SpecLoopTripCount(i64 %d)
  %s
  %%c = icmp slt i64 %%i, %d
  br i1 %%c, label %%body, label %%exit
body:
%s
  br label %%latch
latch:
  %%i.next = add i64 %%i, 1
  br label %%header
exit:
  ret void
}|}
    (if pipeline then "declare void @_ssdm_op_SpecPipeline(i32)" else "")
    n
    (if pipeline then "call void @_ssdm_op_SpecPipeline(i32 1)" else "")
    n body

(* ------------------------------------------------------------------ *)
(* Legality                                                           *)
(* ------------------------------------------------------------------ *)

let test_rejects_modern_ir () =
  let m =
    (Workloads.Kernels.gemm ()).Workloads.Kernels.build
      Workloads.Kernels.no_directives
    |> Lowering.Lower.lower_module
  in
  Alcotest.(check bool) "modern IR rejected" true
    (try
       ignore (E.synthesize ~top:"gemm" m);
       false
     with E.Rejected _ -> true)

let test_rejection_reasons_are_specific () =
  let m =
    (Workloads.Kernels.gemm ()).Workloads.Kernels.build
      Workloads.Kernels.no_directives
    |> Lowering.Lower.lower_module
  in
  let errs = Hls_backend.Adaptor_markers.legality_errors m in
  Alcotest.(check bool) "mentions opaque pointers" true
    (List.exists (fun e -> Str_find.contains e "opaque") errs);
  Alcotest.(check bool) "mentions unsupported intrinsics or aggregates" true
    (List.exists
       (fun e ->
         Str_find.contains e "intrinsic" || Str_find.contains e "aggregate")
       errs)

let test_accepts_adapted_ir () =
  List.iter
    (fun k ->
      let lm, _, _ =
        Flow_util.frontend_exn
          (k.Workloads.Kernels.build Workloads.Kernels.pipelined)
      in
      let r = E.synthesize ~top:k.Workloads.Kernels.kname lm in
      Alcotest.(check bool)
        (k.Workloads.Kernels.kname ^ " latency positive")
        true (r.E.latency > 0))
    (Workloads.Kernels.all ())

(* ------------------------------------------------------------------ *)
(* Directive extraction                                               *)
(* ------------------------------------------------------------------ *)

let test_directive_extraction () =
  let m =
    parse
      (loop_fn ~pipeline:true ~n:16
         "  %v = getelementptr float, float* %p, i64 %i\n  %x = load float, float* %v\n  store float %x, float* %v")
  in
  let f = Lmodule.find_func_exn m "f" in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  Alcotest.(check int) "one loop" 1 (Array.length li.Loop_info.loops);
  let d = D.loop_directives cfg li 0 in
  Alcotest.(check (option int)) "pipeline II" (Some 1) d.D.pipeline_ii;
  Alcotest.(check (option int)) "tripcount" (Some 16) d.D.tripcount

let test_array_info () =
  let m =
    parse
      {|define void @f([4 x [8 x float]]* %A attrs(fpga.interface = "bram", fpga.partition.kind = "cyclic", fpga.partition.factor = "4", fpga.partition.dim = "2")) {
entry:
  ret void
}|}
  in
  let f = Lmodule.find_func_exn m "f" in
  match D.arrays f with
  | [ a ] ->
      Alcotest.(check (list int)) "dims" [ 4; 8 ] a.D.dims;
      Alcotest.(check int) "elem bits" 32 a.D.elem_bits;
      Alcotest.(check int) "factor" 4 a.D.partition_factor;
      Alcotest.(check int) "ports" 8 (D.ports a)
  | _ -> Alcotest.fail "expected one array"

let test_partition_dropped_on_flat_view () =
  (* dim=2 partition on a 1-D view is ineffective *)
  let m =
    parse
      {|define void @f([32 x float]* %A attrs(fpga.partition.kind = "cyclic", fpga.partition.factor = "4", fpga.partition.dim = "2")) {
entry:
  ret void
}|}
  in
  let f = Lmodule.find_func_exn m "f" in
  match D.arrays f with
  | [ a ] -> Alcotest.(check int) "factor forced to 1" 1 a.D.partition_factor
  | _ -> Alcotest.fail "expected one array"

(* ------------------------------------------------------------------ *)
(* Scheduling / latency formulas                                      *)
(* ------------------------------------------------------------------ *)

let test_sequential_loop_formula () =
  (* body: one load (lat 2) + one store (lat 1) on the same port-limited
     array; iteration latency = 4 (addr chain), with the formula
     N*(L+1)+2 *)
  let r =
    synth ~top:"f"
      (loop_fn ~n:10
         "  %v = getelementptr float, float* %p, i64 %i\n  %x = load float, float* %v\n  %y = fadd float %x, 1.0\n  store float %y, float* %v")
  in
  let l = List.hd r.E.loops in
  Alcotest.(check int) "tripcount" 10 l.E.tripcount;
  Alcotest.(check bool) "not pipelined" false l.E.pipelined;
  Alcotest.(check int) "total = N*(L+1)+2" (10 * (l.E.iteration_latency + 1) + 2)
    l.E.total_latency

let test_pipelined_loop_formula () =
  let r =
    synth ~top:"f"
      (loop_fn ~pipeline:true ~n:10
         "  %v = getelementptr float, float* %p, i64 %i\n  %x = load float, float* %v\n  %y = fadd float %x, 1.0\n  store float %y, float* %v")
  in
  let l = List.hd r.E.loops in
  Alcotest.(check bool) "pipelined" true l.E.pipelined;
  (match l.E.achieved_ii with
  | Some ii ->
      Alcotest.(check int) "total = L + (N-1)*II + 2"
        (l.E.iteration_latency + (9 * ii) + 2)
        l.E.total_latency
  | None -> Alcotest.fail "no II");
  Alcotest.(check bool) "pipelining beats sequential" true
    (l.E.total_latency
    < 10 * (l.E.iteration_latency + 1) + 2)

let test_recurrence_bounds_ii () =
  (* loop-carried float accumulation: II >= fadd latency (4) *)
  let text =
    {|declare void @_ssdm_op_SpecLoopTripCount(i64)
declare void @_ssdm_op_SpecPipeline(i32)
define float @f(float* %p attrs(fpga.interface = "bram")) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi float [ 0.0, %entry ], [ %acc.next, %body ]
  call void @_ssdm_op_SpecLoopTripCount(i64 16)
  call void @_ssdm_op_SpecPipeline(i32 1)
  %c = icmp slt i64 %i, 16
  br i1 %c, label %body, label %exit
body:
  %a = getelementptr float, float* %p, i64 %i
  %v = load float, float* %a
  %acc.next = fadd float %acc, %v
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret float %acc
}|}
  in
  let r = synth ~top:"f" text in
  let l = List.hd r.E.loops in
  Alcotest.(check int) "RecMII = fadd latency" 4 l.E.rec_mii;
  Alcotest.(check (option int)) "II = 4" (Some 4) l.E.achieved_ii;
  Alcotest.(check bool) "II violation warned" true (r.E.warnings <> [])

let test_ports_bound_ii () =
  (* 4 loads per iteration from one dual-ported array: ResMII = 2 *)
  let body =
    String.concat "\n"
      (List.map
         (fun k ->
           Printf.sprintf
             "  %%a%d = getelementptr float, float* %%p, i64 %d\n  %%v%d = load float, float* %%a%d"
             k k k k)
         [ 0; 1; 2; 3 ])
    ^ "\n  %s1 = fadd float %v0, %v1\n  %s2 = fadd float %v2, %v3\n  %s3 = fadd float %s1, %s2\n  %q = getelementptr float, float* %p, i64 %i\n  store float %s3, float* %q"
  in
  let r = synth ~top:"f" (loop_fn ~pipeline:true ~n:8 body) in
  let l = List.hd r.E.loops in
  Alcotest.(check bool) "ResMII >= 2 (5 accesses / 2 ports)" true (l.E.res_mii >= 2)

let test_chaining_packs_alu_ops () =
  (* a chain of 0-latency integer adds fits in very few cycles *)
  let body =
    "  %a1 = add i64 %i, 1\n  %a2 = add i64 %a1, 2\n  %a3 = add i64 %a2, 3\n  %a4 = add i64 %a3, 4\n  %a5 = add i64 %a4, 5"
  in
  let r = synth ~top:"f" (loop_fn ~n:4 body) in
  let l = List.hd r.E.loops in
  Alcotest.(check bool) "five adds chain into <= 2 cycles" true
    (l.E.iteration_latency <= 2)

let test_chaining_respects_clock () =
  (* at a very tight clock the same chain needs more cycles *)
  let body =
    "  %a1 = add i64 %i, 1\n  %a2 = add i64 %a1, 2\n  %a3 = add i64 %a2, 3\n  %a4 = add i64 %a3, 4\n  %a5 = add i64 %a4, 5"
  in
  let slow = synth ~top:"f" (loop_fn ~n:4 body) in
  let fast =
    E.synthesize ~clock_ns:2.0 ~top:"f" (parse (loop_fn ~n:4 body))
  in
  let lat r = (List.hd r.E.loops).E.iteration_latency in
  Alcotest.(check bool) "tighter clock, more cycles" true (lat fast > lat slow)

let test_unroll_divides_trip () =
  let m =
    (Workloads.Kernels.gemm ()).Workloads.Kernels.build
      { Workloads.Kernels.pipelined with Workloads.Kernels.unroll = Some 4 }
  in
  let lm, _, _ = Flow_util.frontend_exn m in
  let r = E.synthesize ~top:"gemm" lm in
  let inner =
    List.find (fun (l : E.loop_report) -> l.E.depth = 3) r.E.loops
  in
  Alcotest.(check int) "unroll recorded" 4 inner.E.unroll;
  Alcotest.(check int) "trip stays 16 (pre-unroll)" 16 inner.E.tripcount

(* ------------------------------------------------------------------ *)
(* Resources                                                          *)
(* ------------------------------------------------------------------ *)

let test_bram_estimation () =
  let mk dims factor =
    {
      D.aname = "A";
      dims;
      elem_bits = 32;
      partition_factor = factor;
      partition_kind = (if factor > 1 then "cyclic" else "none");
      partition_dim = 1;
      local = false;
    }
  in
  (* 16x16 x 32 bits = 8192 bits -> 1 BRAM18K *)
  Alcotest.(check int) "small array 1 bram" 1 (E.bram_of_array (mk [ 16; 16 ] 1));
  (* 64x64 x 32 = 131072 bits -> 8 BRAM18K *)
  Alcotest.(check int) "big array 8 brams" 8 (E.bram_of_array (mk [ 64; 64 ] 1));
  (* partitioning multiplies banks *)
  Alcotest.(check bool) "partitioned uses >= banks" true
    (E.bram_of_array (mk [ 64; 64 ] 4) >= 8)

let test_dsp_usage_reported () =
  let lm, _, _ =
    Flow_util.frontend_exn
      ((Workloads.Kernels.gemm ()).Workloads.Kernels.build
         Workloads.Kernels.pipelined)
  in
  let r = E.synthesize ~top:"gemm" lm in
  Alcotest.(check bool) "gemm uses DSPs (fmul+fadd)" true (r.E.resources.E.dsp >= 5);
  Alcotest.(check bool) "gemm uses BRAM for 3 arrays" true (r.E.resources.E.bram >= 3)

let test_resources_grow_with_partitioning () =
  let run factor =
    let d =
      Workloads.Kernels.optimized ~factor ~parts:[ ("A", 2); ("B", 1) ] ()
    in
    let lm, _, _ =
      Flow_util.frontend_exn
        ((Workloads.Kernels.gemm ()).Workloads.Kernels.build d)
    in
    E.synthesize ~top:"gemm" lm
  in
  let r1 = run 1 and r8 = run 8 in
  Alcotest.(check bool) "more partitions, more BRAM banks" true
    (r8.E.resources.E.bram >= r1.E.resources.E.bram);
  Alcotest.(check bool) "more parallelism, more DSPs" true
    (r8.E.resources.E.dsp >= r1.E.resources.E.dsp);
  Alcotest.(check bool) "and lower latency" true (r8.E.latency < r1.E.latency)

(* ------------------------------------------------------------------ *)
(* Report rendering                                                   *)
(* ------------------------------------------------------------------ *)

let test_report_renders () =
  let lm, _, _ =
    Flow_util.frontend_exn
      ((Workloads.Kernels.gemm ()).Workloads.Kernels.build
         Workloads.Kernels.pipelined)
  in
  let r = E.synthesize ~top:"gemm" lm in
  let text = Hls_backend.Report.render r in
  Alcotest.(check bool) "has latency line" true (Str_find.contains text "Latency:");
  Alcotest.(check bool) "has resources" true (Str_find.contains text "BRAM_18K");
  Alcotest.(check bool) "lists loops" true (Str_find.contains text "loop")

let suite =
  [
    Alcotest.test_case "rejects modern IR" `Quick test_rejects_modern_ir;
    Alcotest.test_case "rejection reasons" `Quick test_rejection_reasons_are_specific;
    Alcotest.test_case "accepts adapted IR (all kernels)" `Quick test_accepts_adapted_ir;
    Alcotest.test_case "directive extraction" `Quick test_directive_extraction;
    Alcotest.test_case "array info" `Quick test_array_info;
    Alcotest.test_case "partition dropped on flat view" `Quick test_partition_dropped_on_flat_view;
    Alcotest.test_case "sequential loop formula" `Quick test_sequential_loop_formula;
    Alcotest.test_case "pipelined loop formula" `Quick test_pipelined_loop_formula;
    Alcotest.test_case "recurrence bounds II" `Quick test_recurrence_bounds_ii;
    Alcotest.test_case "ports bound II" `Quick test_ports_bound_ii;
    Alcotest.test_case "chaining packs ALU ops" `Quick test_chaining_packs_alu_ops;
    Alcotest.test_case "chaining respects clock" `Quick test_chaining_respects_clock;
    Alcotest.test_case "unroll divides trip" `Quick test_unroll_divides_trip;
    Alcotest.test_case "bram estimation" `Quick test_bram_estimation;
    Alcotest.test_case "dsp usage" `Quick test_dsp_usage_reported;
    Alcotest.test_case "resources grow with partitioning" `Quick test_resources_grow_with_partitioning;
    Alcotest.test_case "report renders" `Quick test_report_renders;
  ]
