(** Tests for the function-index IR core and the shared analysis
    manager:

    - QCheck invariants of {!Llvmir.Findex} on randomly generated
      kernels (every use edge resolves to the unique def, def-use
      edges are symmetric, use counts match operand occurrences);
    - the preserve/invalidate contract: after every pass of the
      default pipeline, manager-maintained analyses are structurally
      identical to analyses rebuilt from scratch;
    - a regression that the manager-driven pipeline produces
      byte-identical IR to running each pass with fresh analyses on
      every workload kernel;
    - the pipeline trace records analysis cache hits;
    - a 300-case differential fuzz batch (seed 42) stays clean. *)

open Llvmir
module Sym = Support.Interner
module K = Workloads.Kernels
module P = Pass

(* ------------------------------------------------------------------ *)
(* Findex invariants                                                  *)
(* ------------------------------------------------------------------ *)

let exception_to_failure name f =
  try f ()
  with e -> QCheck.Test.fail_reportf "%s: %s" name (Printexc.to_string e)

(** Structural invariants of a freshly built index. *)
let check_findex_invariants (f : Lmodule.func) : bool =
  let idx = Findex.build f in
  let n = Findex.n_instrs idx in
  (* layout: arena size matches the function; block_of in range *)
  let listed =
    List.fold_left
      (fun a (b : Lmodule.block) -> a + List.length b.Lmodule.insts)
      0 f.Lmodule.blocks
  in
  if listed <> n then QCheck.Test.fail_reportf "arena size %d <> %d" n listed;
  (* occurrences per name, counted directly from the instruction list *)
  let occurrences = Sym.Tbl.create 16 in
  for k = 0 to n - 1 do
    let i = Findex.instr idx k in
    if Findex.block_of_instr idx k < 0
       || Findex.block_of_instr idx k >= Findex.n_blocks idx
    then QCheck.Test.fail_reportf "instr %d: block out of range" k;
    List.iter
      (function
        | Lvalue.Reg (r, _) ->
            Sym.Tbl.replace occurrences r
              (1 + Option.value ~default:0 (Sym.Tbl.find_opt occurrences r));
            (* use edge resolves to the unique def *)
            (match Findex.def idx r with
            | None ->
                QCheck.Test.fail_reportf "use of %%%s has no def" (Sym.name r)
            | Some (Findex.Param pi) ->
                let p = List.nth f.Lmodule.params pi in
                if not (Sym.equal (Sym.intern p.Lmodule.pname) r) then
                  QCheck.Test.fail_reportf "param def of %%%s is wrong"
                    (Sym.name r)
            | Some (Findex.Instr dk) ->
                if not (Sym.equal (Findex.instr idx dk).Linstr.result r) then
                  QCheck.Test.fail_reportf "instr def of %%%s is wrong"
                    (Sym.name r));
            (* def-use edges are symmetric *)
            if not (List.mem k (Findex.users idx r)) then
              QCheck.Test.fail_reportf "instr %d missing from users(%%%s)" k
                (Sym.name r)
        | _ -> ())
      (Linstr.operands i)
  done;
  (* use counts match operand occurrences exactly *)
  Sym.Tbl.iter
    (fun r c ->
      if Findex.use_count idx r <> c then
        QCheck.Test.fail_reportf "use_count(%%%s) = %d, expected %d"
          (Sym.name r) (Findex.use_count idx r) c)
    occurrences;
  (* every user edge is a real operand occurrence *)
  Sym.Tbl.iter
    (fun r c ->
      ignore c;
      List.iter
        (fun k ->
          let uses_r =
            List.exists
              (function Lvalue.Reg (r', _) -> Sym.equal r r' | _ -> false)
              (Linstr.operands (Findex.instr idx k))
          in
          if not uses_r then
            QCheck.Test.fail_reportf "stale user edge %d for %%%s" k
              (Sym.name r))
        (Findex.users idx r))
    occurrences;
  true

let lowered_of_kernel (rk : Test_random.rkernel) : Lmodule.t =
  Lowering.Lower.lower_module (Mhir.Canonicalize.run (Test_random.build_module rk))

let prop_findex_invariants =
  QCheck.Test.make ~name:"findex: invariants on random kernels" ~count:20
    Test_random.arb_kernel (fun rk ->
      exception_to_failure "findex invariants" (fun () ->
          let lm = lowered_of_kernel rk in
          List.for_all check_findex_invariants lm.Lmodule.funcs
          &&
          let lm', _ = P.run_pipeline P.default_pipeline lm in
          List.for_all check_findex_invariants lm'.Lmodule.funcs))

(* ------------------------------------------------------------------ *)
(* Preserve/invalidate contract                                       *)
(* ------------------------------------------------------------------ *)

let cfg_equal (a : Cfg.t) (b : Cfg.t) =
  Array.init (Cfg.n_blocks a) (Cfg.label a)
  = Array.init (Cfg.n_blocks b) (Cfg.label b)
  && a.Cfg.succs = b.Cfg.succs
  && a.Cfg.preds = b.Cfg.preds

let findex_equal (a : Findex.t) (b : Findex.t) =
  let names idx =
    let acc = ref [] in
    for k = 0 to Findex.n_instrs idx - 1 do
      let i = Findex.instr idx k in
      if not (Sym.is_empty i.Linstr.result) then acc := i.Linstr.result :: !acc
    done;
    !acc
  in
  Findex.n_instrs a = Findex.n_instrs b
  && Array.init (Findex.n_instrs a) (Findex.instr a)
     = Array.init (Findex.n_instrs b) (Findex.instr b)
  && Array.init (Findex.n_instrs a) (Findex.block_of_instr a)
     = Array.init (Findex.n_instrs b) (Findex.block_of_instr b)
  && List.for_all
       (fun r ->
         Findex.def a r = Findex.def b r
         && Findex.users a r = Findex.users b r
         && Findex.use_count a r = Findex.use_count b r)
       (names a)

(** After every pass + {!Analysis.keep}, a manager-maintained (cached
    and possibly rebased) analysis must be structurally identical to
    one rebuilt from scratch — the soundness of each pass's
    [preserves] declaration. *)
let prop_manager_matches_rebuild =
  QCheck.Test.make ~name:"analysis manager: preserved == rebuilt" ~count:15
    Test_random.arb_kernel (fun rk ->
      exception_to_failure "manager vs rebuild" (fun () ->
          let am = Analysis.create () in
          let m = ref (lowered_of_kernel rk) in
          List.iter
            (fun (p : P.pass) ->
              let m' = p.P.run am !m in
              Analysis.keep am ~preserves:p.P.preserves m';
              List.iter
                (fun f ->
                  if not (cfg_equal (Analysis.cfg ~am f) (Cfg.build f)) then
                    QCheck.Test.fail_reportf "pass %s: stale CFG" p.P.name;
                  if
                    not
                      (findex_equal (Analysis.findex ~am f) (Findex.build f))
                  then
                    QCheck.Test.fail_reportf "pass %s: stale findex" p.P.name)
                m'.Lmodule.funcs;
              m := m')
            P.default_pipeline;
          true))

(* ------------------------------------------------------------------ *)
(* Manager-driven pipeline is a pure refactor                         *)
(* ------------------------------------------------------------------ *)

(** The shared-manager pipeline must produce byte-identical IR to
    running every pass with fresh analyses (no caching, nothing
    preserved), on every workload kernel. *)
let test_pipeline_byte_identical () =
  List.iter
    (fun (k : K.kernel) ->
      let m = Mhir.Canonicalize.run (k.K.build K.pipelined) in
      let lm = Lowering.Lower.lower_module ~style:Lowering.Lower.modern m in
      let managed, _ = P.run_pipeline P.default_pipeline lm in
      let fresh =
        List.fold_left
          (fun m (p : P.pass) -> p.P.run (Analysis.create ()) m)
          lm P.default_pipeline
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: managed pipeline output identical" k.K.kname)
        (Lprinter.module_to_string fresh)
        (Lprinter.module_to_string managed))
    (K.all ())

(** The standard pipeline actually hits the analysis cache. *)
let test_pipeline_cache_hits () =
  let k = List.hd (K.all ()) in
  let m = Mhir.Canonicalize.run (k.K.build K.pipelined) in
  let lm = Lowering.Lower.lower_module ~style:Lowering.Lower.modern m in
  let trace, events = Support.Tracing.collector () in
  ignore (P.run_pipeline ~trace P.default_pipeline lm);
  let hits, computes =
    List.fold_left
      (fun (h, c) (e : Support.Tracing.event) ->
        if e.Support.Tracing.ev_stage <> "analysis" then (h, c)
        else if
          String.length e.Support.Tracing.ev_pass >= 4
          && String.sub e.Support.Tracing.ev_pass
               (String.length e.Support.Tracing.ev_pass - 4)
               4
             = ":hit"
        then (h + 1, c)
        else (h, c + 1))
      (0, 0) (events ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "cache hits recorded (%d hits, %d computes)" hits computes)
    true (hits > 0);
  Alcotest.(check bool) "some analyses are computed" true (computes > 0)

(* ------------------------------------------------------------------ *)
(* Differential fuzz                                                  *)
(* ------------------------------------------------------------------ *)

let test_fuzz_300_clean () =
  let r = Mhls_difftest.Difftest.run_batch ~seed:42 ~count:300 () in
  Alcotest.(check int) "cases run" 300 r.Mhls_difftest.Difftest.r_total;
  Alcotest.(check int) "no mismatches" 0
    (List.length r.Mhls_difftest.Difftest.r_failures)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_findex_invariants;
    QCheck_alcotest.to_alcotest prop_manager_matches_rebuild;
    Alcotest.test_case "pipeline byte-identical" `Quick
      test_pipeline_byte_identical;
    Alcotest.test_case "pipeline cache hits" `Quick test_pipeline_cache_hits;
    Alcotest.test_case "300-case fuzz clean" `Slow test_fuzz_300_clean;
  ]
