(** Cross-cutting coverage: dialect registry, attribute accessors,
    value helpers, scf constructs through the C++ round-trip, operator
    model totality. *)

open Mhir

(* ------------------------------------------------------------------ *)
(* Dialect registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_registry_consistency () =
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " is known") true (Dialect.is_known name);
      Alcotest.(check string)
        (name ^ " has a dialect prefix")
        (List.hd (String.split_on_char '.' name))
        (Dialect.dialect_of name))
    Dialect.registry

let test_terminators_are_not_pure () =
  List.iter
    (fun (name, s) ->
      if s.Dialect.terminator then
        Alcotest.(check bool) (name ^ " not pure") false (Dialect.is_pure name))
    Dialect.registry

let test_unknown_ops_rejected () =
  Alcotest.(check bool) "unknown op" false (Dialect.is_known "foo.bar");
  Alcotest.(check bool) "lookup_exn raises" true
    (try
       ignore (Dialect.lookup_exn "foo.bar");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Attributes                                                         *)
(* ------------------------------------------------------------------ *)

let test_attr_accessors () =
  Alcotest.(check int) "as_int" 5 (Attr.as_int (Attr.Int 5));
  Alcotest.(check (float 0.0)) "as_float coerces int" 5.0 (Attr.as_float (Attr.Int 5));
  Alcotest.(check string) "as_str" "x" (Attr.as_str (Attr.Str "x"));
  Alcotest.(check bool) "wrong kind raises" true
    (try
       ignore (Attr.as_int (Attr.Str "x"));
       false
     with Invalid_argument _ -> true)

let test_attr_dict () =
  let d = [ ("a", Attr.Int 1) ] in
  let d = Attr.set d "b" (Attr.Int 2) in
  let d = Attr.set d "a" (Attr.Int 9) in
  Alcotest.(check (option int)) "set overrides" (Some 9)
    (Option.map Attr.as_int (Attr.find d "a"));
  Alcotest.(check (option int)) "set adds" (Some 2)
    (Option.map Attr.as_int (Attr.find d "b"));
  Alcotest.(check bool) "find_exn raises on missing" true
    (try
       ignore (Attr.find_exn d "zzz");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Lvalue helpers                                                     *)
(* ------------------------------------------------------------------ *)

let test_lvalue_helpers () =
  let open Llvmir in
  Alcotest.(check (option int)) "const_int_value" (Some 7)
    (Lvalue.const_int_value (Lvalue.ci64 7));
  Alcotest.(check (option int)) "regs are not const" None
    (Lvalue.const_int_value (Lvalue.reg "x" Ltype.I64));
  Alcotest.(check bool) "same_reg" true
    (Lvalue.same_reg (Lvalue.reg "x" Ltype.I64) (Lvalue.reg "x" Ltype.I32));
  Alcotest.(check string) "typed_to_string" "i1 true"
    (Lvalue.typed_to_string (Lvalue.ci1 true));
  Alcotest.(check string) "float const" "2.5"
    (Lvalue.to_string (Lvalue.cf 2.5))

(* ------------------------------------------------------------------ *)
(* scf constructs through the full C++ round-trip                     *)
(* ------------------------------------------------------------------ *)

let build_clip () =
  let b = Builder.create () in
  let f =
    Builder.func b "clip"
      ~args:[ ("x", Types.memref [ 8 ]) ]
      ~ret_tys:[]
      (fun b args ->
        let x = List.hd args in
        let lb = Builder.constant_i b 0 in
        let ub = Builder.constant_i b 8 in
        let step = Builder.constant_i b 1 in
        ignore
          (Builder.scf_for b ~lb ~ub ~step (fun b i _ ->
               let v = Builder.load b x [ i ] in
               let limit = Builder.constant_f b 5.0 in
               let c = Builder.cmpf b Builder.Ogt v limit in
               let clipped =
                 Builder.scf_if b c ~result_tys:[ Types.F32 ]
                   ~then_:(fun b -> [ Builder.constant_f b 5.0 ])
                   ~else_:(fun _ -> [ v ])
               in
               Builder.store b (List.hd clipped) x [ i ];
               []));
        Builder.ret b [])
  in
  { Ir.funcs = [ f ] }

let test_scf_through_cpp_roundtrip () =
  let m = build_clip () in
  Verifier.verify_module m;
  let cpp = Hlscpp.Emit.emit_module (Canonicalize.run m) in
  Alcotest.(check bool) "emits an if" true (Str_find.contains cpp "if (");
  let lm = Hlscpp.Ccodegen.compile cpp in
  Llvmir.Lverifier.verify_module lm;
  let st = Llvmir.Linterp.create lm in
  let ax = Llvmir.Linterp.alloc_floats st 8 in
  Llvmir.Linterp.write_floats st ax [| 1.; 9.; 3.; 7.; 5.; 6.; 2.; 8. |];
  ignore (Llvmir.Linterp.run st "clip" [ Llvmir.Linterp.RPtr ax ]);
  let out = Llvmir.Linterp.read_floats st ax 8 in
  Alcotest.(check (float 1e-9)) "clipped via C++" 5.0 out.(1);
  Alcotest.(check (float 1e-9)) "kept via C++" 3.0 out.(2)

let test_scf_pretty_printer () =
  let m = build_clip () in
  let s = Printer.module_to_string m in
  Alcotest.(check bool) "pretty scf.for" true (Str_find.contains s "scf.for");
  Alcotest.(check bool) "pretty scf.if" true (Str_find.contains s "scf.if")

let test_scf_generic_roundtrip () =
  let m = build_clip () in
  let t1 = Printer.module_to_string ~generic:true m in
  let m2 = Parser.parse_module t1 in
  Verifier.verify_module m2;
  Alcotest.(check string) "fixpoint" t1 (Printer.module_to_string ~generic:true m2)

(* ------------------------------------------------------------------ *)
(* Operator model totality                                            *)
(* ------------------------------------------------------------------ *)

let test_op_model_total_on_kernels () =
  (* classify must succeed on every instruction both flows produce *)
  List.iter
    (fun k ->
      let check lm =
        List.iter
          (fun (f : Llvmir.Lmodule.func) ->
            Llvmir.Lmodule.iter_insts
              (fun i ->
                let _, cost = Hls_backend.Op_model.classify i in
                Alcotest.(check bool) "non-negative latency" true
                  (cost.Hls_backend.Op_model.latency >= 0))
              f)
          lm.Llvmir.Lmodule.funcs
      in
      let m = k.Workloads.Kernels.build Workloads.Kernels.pipelined in
      let direct, _, _ = Flow_util.frontend_exn m in
      let cpp, _, _ = Flow.hls_cpp_frontend (k.Workloads.Kernels.build Workloads.Kernels.pipelined) in
      check direct;
      check cpp)
    (Workloads.Kernels.all ())

let test_fu_names_unique () =
  let open Hls_backend.Op_model in
  let names =
    List.map fu_name
      [ FU_fadd; FU_fmul; FU_fdiv; FU_imul 32; FU_imul 64; FU_idiv; FU_alu;
        FU_mem_read; FU_mem_write; FU_none ]
  in
  Alcotest.(check int) "distinct class names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "registry consistency" `Quick test_registry_consistency;
    Alcotest.test_case "terminators not pure" `Quick test_terminators_are_not_pure;
    Alcotest.test_case "unknown ops rejected" `Quick test_unknown_ops_rejected;
    Alcotest.test_case "attr accessors" `Quick test_attr_accessors;
    Alcotest.test_case "attr dict" `Quick test_attr_dict;
    Alcotest.test_case "lvalue helpers" `Quick test_lvalue_helpers;
    Alcotest.test_case "scf through C++ roundtrip" `Quick test_scf_through_cpp_roundtrip;
    Alcotest.test_case "scf pretty printer" `Quick test_scf_pretty_printer;
    Alcotest.test_case "scf generic roundtrip" `Quick test_scf_generic_roundtrip;
    Alcotest.test_case "op model total" `Quick test_op_model_total_on_kernels;
    Alcotest.test_case "fu names unique" `Quick test_fu_names_unique;
  ]
