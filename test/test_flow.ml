(** End-to-end flow tests: co-simulation of both flows against the
    OCaml references under several directive sets, and the paper's
    headline comparability property. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate

let directive_sets =
  [
    ("no-directives", K.no_directives);
    ("inner-pipeline", K.pipelined);
    ("inner-pipeline-unroll2", { K.pipelined with K.unroll = Some 2 });
    ("optimized", K.optimized ~factor:4 ~parts:[ ("A", 2) ] ());
  ]

let test_cosim_all_kernels_all_directives () =
  List.iter
    (fun k ->
      List.iter
        (fun (dname, d) ->
          (* partitions reference "A"; skip sets that name absent args *)
          let ok_args =
            List.for_all
              (fun (a, _, _, _) -> List.mem_assoc a k.K.args)
              d.K.partitions
          in
          if ok_args then begin
            let cs = Flow.cosim ~directives:d k in
            if not cs.Flow.ok then
              Alcotest.failf "%s/%s: %s" k.K.kname dname
                (match cs.Flow.details with d :: _ -> d | [] -> "?")
          end)
        directive_sets)
    (K.all ())

let test_both_flows_synthesize_everything () =
  List.iter
    (fun k ->
      let c = Flow.compare_flows k in
      Alcotest.(check bool)
        (k.K.kname ^ " direct latency positive")
        true
        (c.Flow.direct.Flow.hls.E.latency > 0);
      Alcotest.(check bool)
        (k.K.kname ^ " cpp latency positive")
        true
        (c.Flow.cpp.Flow.hls.E.latency > 0))
    (K.all ())

let test_comparable_performance () =
  (* the paper's headline: QoR through the adaptor flow is comparable
     to the HLS C++ flow — within 25% on every kernel *)
  List.iter
    (fun k ->
      let c = Flow.compare_flows k in
      let ratio = Flow.latency_ratio c in
      Alcotest.(check bool)
        (Printf.sprintf "%s ratio %.3f within [0.75, 1.33]" k.K.kname ratio)
        true
        (ratio > 0.75 && ratio < 1.33))
    (K.all ())

let test_adaptor_report_attached () =
  let r = Flow.run_exn (K.gemm ()) Flow.Direct_ir in
  match r.Flow.adaptor_report with
  | Some rep ->
      Alcotest.(check bool) "issues found before" true
        (rep.Adaptor.issues_before <> []);
      Alcotest.(check int) "no issues after" 0 (List.length rep.Adaptor.issues_after)
  | None -> Alcotest.fail "direct flow must carry an adaptor report"

let test_cpp_source_attached () =
  let r = Flow.run_exn (K.gemm ()) Flow.Hls_cpp in
  match r.Flow.cpp_source with
  | Some src -> Alcotest.(check bool) "has C++ text" true (Str_find.contains src "void gemm")
  | None -> Alcotest.fail "cpp flow must carry its source"

let test_partition_sweep_monotonic () =
  (* Figure 3's shape: increasing the partition factor must never
     increase adaptor-flow latency, and II must reach 1 at factor 8 *)
  let latencies =
    List.map
      (fun factor ->
        let d = K.optimized ~factor ~parts:[ ("A", 2); ("B", 1) ] () in
        let r = Flow.run_exn ~directives:d (K.gemm ()) Flow.Direct_ir in
        r.Flow.hls.E.latency)
      [ 1; 2; 4; 8 ]
  in
  let rec monotonic = function
    | a :: (b :: _ as tl) -> a >= b && monotonic tl
    | _ -> true
  in
  Alcotest.(check bool) "latency non-increasing in factor" true
    (monotonic latencies)

let test_flat_ablation_ignores_partitioning () =
  (* without delinearization the partition directive cannot help *)
  let lat factor =
    let d = K.optimized ~factor ~parts:[ ("A", 2); ("B", 1) ] () in
    let m = (K.gemm ()).K.build d in
    let lm, _, _ =
      Flow_util.frontend_exn ~pipeline:Adaptor.Pipeline.flat_views m
    in
    (E.synthesize ~top:"gemm" lm).E.latency
  in
  Alcotest.(check int) "factor has no effect on the flat view" (lat 1) (lat 8)

let test_adaptor_beats_flat_ablation () =
  let d = K.optimized ~factor:8 ~parts:[ ("A", 2); ("B", 1) ] () in
  let full = Flow.run_exn ~directives:d (K.gemm ()) Flow.Direct_ir in
  let m = (K.gemm ()).K.build d in
  let lm, _, _ = Flow_util.frontend_exn ~pipeline:Adaptor.Pipeline.flat_views m in
  let flat = E.synthesize ~top:"gemm" lm in
  Alcotest.(check bool) "delinearization pays off" true
    (full.Flow.hls.E.latency * 2 < flat.E.latency)

let test_no_descriptor_ablation_rejected () =
  let m = (K.gemm ()).K.build K.pipelined in
  let lm, _, _ =
    Flow_util.frontend_exn
      ~pipeline:Adaptor.Pipeline.no_descriptor_elimination m
  in
  Alcotest.(check bool) "descriptor IR rejected by the tool" true
    (try
       ignore (E.synthesize ~top:"gemm" lm);
       false
     with E.Rejected _ -> true)

let test_compile_times_recorded () =
  let c = Flow.compare_flows (K.gemm ()) in
  Alcotest.(check bool) "direct time recorded" true (c.Flow.direct.Flow.seconds >= 0.0);
  Alcotest.(check bool) "cpp time recorded" true (c.Flow.cpp.Flow.seconds >= 0.0)

let suite =
  [
    Alcotest.test_case "cosim (all kernels x directives)" `Slow
      test_cosim_all_kernels_all_directives;
    Alcotest.test_case "both flows synthesize" `Quick test_both_flows_synthesize_everything;
    Alcotest.test_case "comparable performance" `Quick test_comparable_performance;
    Alcotest.test_case "adaptor report attached" `Quick test_adaptor_report_attached;
    Alcotest.test_case "cpp source attached" `Quick test_cpp_source_attached;
    Alcotest.test_case "partition sweep monotonic" `Quick test_partition_sweep_monotonic;
    Alcotest.test_case "flat ablation ignores partitioning" `Quick
      test_flat_ablation_ignores_partitioning;
    Alcotest.test_case "adaptor beats flat ablation" `Quick test_adaptor_beats_flat_ablation;
    Alcotest.test_case "no-descriptor ablation rejected" `Quick
      test_no_descriptor_ablation_rejected;
    Alcotest.test_case "compile times recorded" `Quick test_compile_times_recorded;
  ]
