(** Test entry point: one Alcotest suite per subsystem. *)

let () =
  Alcotest.run "mlir-hls-adaptor"
    [
      ("support", Test_support.suite);
      ("affine", Test_affine.suite);
      ("mhir", Test_mhir.suite);
      ("mhir-interp", Test_mhir_interp.suite);
      ("loop-unroll", Test_loop_unroll.suite);
      ("ltype", Test_ltype.suite);
      ("llvmir", Test_llvmir.suite);
      ("llvm-analyses", Test_llvm_analyses.suite);
      ("dataflow", Test_dataflow.suite);
      ("memdep", Test_memdep.suite);
      ("alias", Test_alias.suite);
      ("verifier-neg", Test_verifier_neg.suite);
      ("llvmir-extra", Test_llvmir_extra.suite);
      ("findex", Test_findex.suite);
      ("iarena", Test_iarena.suite);
      ("llvm-interp", Test_llvm_interp.suite);
      ("llvm-passes", Test_llvm_passes.suite);
      ("adaptor", Test_adaptor.suite);
      ("hlscpp", Test_hlscpp.suite);
      ("hls-backend", Test_hls_backend.suite);
      ("backend", Test_backend.suite);
      ("workloads", Test_workloads.suite);
      ("lowering", Test_lowering.suite);
      ("flow", Test_flow.suite);
      ("lint", Test_lint.suite);
      ("random", Test_random.suite);
      ("dse", Test_dse.suite);
      ("driver", Test_driver.suite);
      ("misc", Test_misc.suite);
      ("int-semantics", Test_int_semantics.suite);
      ("difftest", Test_difftest.suite);
      ("serve", Test_serve.suite);
    ]
