(** Tests for the differential equivalence harness.

    Three properties: a seeded batch is clean on the current compiler;
    case generation is a pure function of (seed, index) so batches are
    reproducible for any job count; and a deliberately injected bug —
    the old "unsigned compare evaluated as signed" interpreter defect —
    is caught, shrunk and turned into a parseable repro. *)

module F = Mhls_difftest.Difftest
module Spec = Mhls_difftest.Spec
module Rng = Mhls_difftest.Rng

let test_seeded_batch_clean () =
  let r = F.run_batch ~seed:42 ~count:40 () in
  Alcotest.(check int) "cases run" 40 r.F.r_total;
  Alcotest.(check int) "no mismatches" 0 (List.length r.F.r_failures)

let test_deterministic_cases () =
  (* same (seed, index) -> same spec and inputs, independent of any
     other case's stream *)
  List.iter
    (fun index ->
      let a = F.gen_case ~seed:7 ~index in
      let b = F.gen_case ~seed:7 ~index in
      Alcotest.(check bool)
        (Printf.sprintf "case %d reproducible" index)
        true
        (a.F.c_spec = b.F.c_spec
        && a.F.c_ints = b.F.c_ints
        && a.F.c_floats = b.F.c_floats
        && a.F.c_n = b.F.c_n))
    [ 0; 1; 17; 99 ];
  let a = F.gen_case ~seed:7 ~index:0 in
  let b = F.gen_case ~seed:8 ~index:0 in
  Alcotest.(check bool)
    "different seeds give different cases" true
    (a.F.c_spec <> b.F.c_spec || a.F.c_ints <> b.F.c_ints)

let test_jobs_invariance () =
  let r1 = F.run_batch ~seed:11 ~count:12 ~jobs:1 () in
  let r4 = F.run_batch ~seed:11 ~count:12 ~jobs:4 () in
  Alcotest.(check int)
    "same failure count for any job count"
    (List.length r1.F.r_failures)
    (List.length r4.F.r_failures)

(* ------------------------------------------------------------------ *)
(* Injected-bug demonstration                                         *)
(* ------------------------------------------------------------------ *)

(** Re-introduce the fixed interpreter defect at the IR level: evaluate
    every unsigned [ult] as a signed [slt].  Applied to the lowered
    module just before execution via the harness' mutate hook. *)
let resurrect_signed_ult _stage lm =
  let open Llvmir in
  Lmodule.map_funcs
    (Lmodule.rewrite_insts (fun (i : Linstr.t) ->
         [
           (match i.Linstr.op with
           | Linstr.Icmp (Linstr.IUlt, a, b) ->
               { i with Linstr.op = Linstr.Icmp (Linstr.ISlt, a, b) }
           | _ -> i);
         ]))
    lm

(** kernel: a1[i][j] = (a0[i][j] `ult` 0) ? 1 : 2 — with negative
    inputs the unsigned compare is always false (store 2), the signed
    one true (store 1): a deterministic divergence. *)
let ult_spec =
  {
    Spec.dim = 2;
    istore =
      Spec.ISel (Spec.CUlt, Spec.ILoad false, Spec.IConst 0, Spec.IConst 1,
                 Spec.IConst 2);
    fstore = Spec.FConst 0.0;
    ired = None;
    helper = None;
  }

let ult_case =
  {
    F.c_seed = 0;
    c_index = 0;
    c_spec = ult_spec;
    c_ints = Array.make F.input_slots (-5);
    c_floats = Array.make F.input_slots 0.0;
    c_n = 0;
  }

let test_injected_bug_caught () =
  (* sanity: the unmutated stack agrees on this case *)
  (match F.run_case ult_case with
  | None -> ()
  | Some (st, d) ->
      Alcotest.fail (Printf.sprintf "clean run diverged at %s: %s" st d));
  match F.run_case ~mutate:resurrect_signed_ult ~stages:[ F.Lower ] ult_case with
  | Some ("lower", detail) ->
      Alcotest.(check bool)
        "mismatch names an int output" true
        (String.length detail > 0)
  | Some (st, d) ->
      Alcotest.fail (Printf.sprintf "diverged at %s instead of lower: %s" st d)
  | None -> Alcotest.fail "injected signed-ult bug was not detected"

let test_injected_bug_shrinks_to_repro () =
  let first =
    match
      F.run_case ~mutate:resurrect_signed_ult ~stages:[ F.Lower ] ult_case
    with
    | Some f -> f
    | None -> Alcotest.fail "injected bug not detected"
  in
  let shrunk, (stage, _detail) =
    F.shrink_case ~mutate:resurrect_signed_ult ~stages:[ F.Lower ] ult_case
      first
  in
  Alcotest.(check string) "still fails at the lowering stage" "lower" stage;
  Alcotest.(check bool)
    "shrinking never grows the spec" true
    (Spec.size shrunk.F.c_spec <= Spec.size ult_case.F.c_spec);
  (* the emitted repro is self-contained: it parses and verifies *)
  let failure =
    {
      F.f_index = 0;
      f_seed = 0;
      f_case = shrunk;
      f_orig_size = Spec.size ult_case.F.c_spec;
      f_stage = stage;
      f_detail = "demo";
    }
  in
  let text = F.repro_text failure in
  let m = Mhir.Parser.parse_module text in
  Mhir.Verifier.verify_module m;
  Alcotest.(check bool)
    "repro module has the kernel" true
    (Mhir.Ir.find_func m "kernel" <> None)

let suite =
  [
    Alcotest.test_case "seeded batch is clean" `Quick test_seeded_batch_clean;
    Alcotest.test_case "cases are (seed, index)-deterministic" `Quick
      test_deterministic_cases;
    Alcotest.test_case "reports invariant under --jobs" `Quick
      test_jobs_invariance;
    Alcotest.test_case "injected signed-ult bug is caught" `Quick
      test_injected_bug_caught;
    Alcotest.test_case "injected bug shrinks to a parseable repro" `Quick
      test_injected_bug_shrinks_to_repro;
  ]
