(** Tests for the loop-carried memory-dependence analysis: known
    distances, unknown offsets, independence, and GEMM-style nests. *)

open Llvmir

let parse_fn text =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  List.hd m.Lmodule.funcs

let analyze text =
  let f = parse_fn text in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  (cfg, li)

(* store A[i], load A[i-1]: flow dependence carried at distance 1 *)
let shift_fn =
  {|define void @k([64 x float]* %A) {
entry:
  br label %h
h:
  %i = phi i64 [ 1, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, 64
  br i1 %c, label %b, label %x
b:
  %im1 = sub i64 %i, 1
  %pl = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %im1
  %v = load float, float* %pl
  %ps = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %i
  store float %v, float* %ps
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}|}

let verdicts text =
  let cfg, li = analyze text in
  List.map
    (fun (d : Memdep.dep) -> d.Memdep.dep_verdict)
    (Memdep.analyze_loop cfg li 0)

let test_known_distance () =
  let vs = verdicts shift_fn in
  Alcotest.(check bool) "store->load carried at distance 1" true
    (List.mem (Memdep.Carried 1) vs);
  (* the store paired with itself writes a fresh element each
     iteration: intra only *)
  Alcotest.(check bool) "store self-pair intra" true (List.mem Memdep.Intra vs);
  Alcotest.(check bool) "nothing unknown" false (List.mem Memdep.Unknown vs)

let test_iv_phi () =
  let cfg, li = analyze shift_fn in
  Alcotest.(check (option string)) "induction variable" (Some "i")
    (Option.map Support.Interner.name (Memdep.iv_phi cfg li 0))

(* store A[2i], load A[2i+1]: interleaved, never collide *)
let stride2_fn =
  {|define void @k([64 x float]* %A) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %b, label %x
b:
  %e = mul i64 %i, 2
  %o = add i64 %e, 1
  %pl = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %o
  %v = load float, float* %pl
  %ps = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %e
  store float %v, float* %ps
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}|}

let test_independent_interleave () =
  let vs = verdicts stride2_fn in
  Alcotest.(check bool) "even/odd accesses independent" true
    (List.mem Memdep.Independent vs);
  Alcotest.(check bool) "no carried dep" false
    (List.exists (function Memdep.Carried _ -> true | _ -> false) vs)

(* store A[i], load B[i]: distinct arrays, no pair at all *)
let two_arrays_fn =
  {|define void @k([64 x float]* %A, [64 x float]* %B) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, 64
  br i1 %c, label %b, label %x
b:
  %pl = getelementptr inbounds [64 x float], [64 x float]* %B, i64 0, i64 %i
  %v = load float, float* %pl
  %ps = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %i
  store float %v, float* %ps
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}|}

let test_distinct_arrays () =
  let cfg, li = analyze two_arrays_fn in
  let deps = Memdep.analyze_loop cfg li 0 in
  (* only the store's self-pair on A remains, and it is intra *)
  Alcotest.(check bool) "no cross-array pairs" true
    (List.for_all (fun d -> d.Memdep.dep_array = "A") deps);
  Alcotest.(check (list bool)) "self-pair intra" [ true ]
    (List.map (fun d -> d.Memdep.dep_verdict = Memdep.Intra) deps)

(* store A[i+n] with symbolic n: fixed but unknown offset *)
let unknown_fn =
  {|define void @k([64 x float]* %A, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %b, label %x
b:
  %ipn = add i64 %i, %n
  %pl = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %i
  %v = load float, float* %pl
  %ps = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %ipn
  store float %v, float* %ps
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}|}

let test_unknown_offset () =
  let vs = verdicts unknown_fn in
  Alcotest.(check bool) "symbolic offset is unknown" true
    (List.mem Memdep.Unknown vs)

(* store through a phi-selected pointer (unknown base) next to a load
   from %A: symbol equality alone would silently treat them as
   independent; the alias oracle pairs them and reports Unknown *)
let phi_ptr_fn =
  {|define void @k([64 x float]* %A, [64 x float]* %B, i1 %c) {
entry:
  br i1 %c, label %l, label %r
l:
  br label %h0
r:
  br label %h0
h0:
  %ptr = phi [64 x float]* [ %A, %l ], [ %B, %r ]
  br label %h
h:
  %i = phi i64 [ 0, %h0 ], [ %i.next, %b ]
  %cc = icmp slt i64 %i, 64
  br i1 %cc, label %b, label %x
b:
  %pl = getelementptr inbounds [64 x float], [64 x float]* %A, i64 0, i64 %i
  %v = load float, float* %pl
  %ps = getelementptr inbounds [64 x float], [64 x float]* %ptr, i64 0, i64 %i
  store float %v, float* %ps
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}|}

let test_phi_pointer_pairs () =
  let cfg, li = analyze phi_ptr_fn in
  (* the loop over %i is the innermost loop *)
  let j =
    Array.to_list li.Loop_info.loops
    |> List.mapi (fun j l -> (j, l.Loop_info.depth))
    |> List.fold_left
         (fun (bj, bd) (j, d) -> if d > bd then (j, d) else (bj, bd))
         (0, 0)
    |> fst
  in
  let deps = Memdep.analyze_loop cfg li j in
  Alcotest.(check bool)
    "load %A paired with store through phi pointer, verdict unknown" true
    (List.exists
       (fun d ->
         d.Memdep.dep_verdict = Memdep.Unknown
         && d.Memdep.dep_src.Memdep.acc_array <> d.Memdep.dep_dst.Memdep.acc_array)
       deps)

(* GEMM-style inner loop: A and B are only loaded, the accumulation is
   in a register — no memory dependence at all w.r.t. the k-loop *)
let test_gemm_inner_loop () =
  let k = Option.get (Workloads.Kernels.by_name "gemm") in
  let d =
    {
      Workloads.Kernels.pipeline_ii = Some 1;
      unroll = None;
      strategy = Workloads.Kernels.Inner;
      partitions = [];
    }
  in
  let lm, _, _ =
    Flow_util.frontend_exn (k.Workloads.Kernels.build d)
  in
  let f = Llvmir.Lmodule.find_func_exn lm "gemm" in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  (* find the innermost loop (depth 3) *)
  let j =
    Option.get
      (Array.to_list li.Loop_info.loops
      |> List.mapi (fun j l -> (j, l))
      |> List.find_opt (fun (_, l) -> l.Loop_info.depth = 3)
      |> Option.map fst)
  in
  let carried = Memdep.carried (Memdep.analyze_loop cfg li j) in
  Alcotest.(check int) "no carried memory deps in gemm inner loop" 0
    (List.length carried);
  (* but the outer accesses do exist *)
  Alcotest.(check bool) "accesses collected" true
    (List.length (Memdep.accesses_in cfg li j) >= 2)

(* seidel-style in-place stencil: store A[i][j] vs load A[i][j+1]
   in the inner loop is carried at distance 1 *)
let test_seidel_carried () =
  let k = Option.get (Workloads.Kernels.by_name "seidel2d") in
  let d =
    {
      Workloads.Kernels.pipeline_ii = Some 1;
      unroll = None;
      strategy = Workloads.Kernels.Inner;
      partitions = [];
    }
  in
  let lm, _, _ =
    Flow_util.frontend_exn (k.Workloads.Kernels.build d)
  in
  let f = Llvmir.Lmodule.find_func_exn lm "seidel2d" in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  let deepest =
    Array.to_list li.Loop_info.loops
    |> List.mapi (fun j l -> (j, l.Loop_info.depth))
    |> List.fold_left (fun (bj, bd) (j, dep) ->
           if dep > bd then (j, dep) else (bj, bd))
         (0, 0)
    |> fst
  in
  let carried = Memdep.carried (Memdep.analyze_loop cfg li deepest) in
  Alcotest.(check bool) "in-place stencil has carried deps" true
    (carried <> []);
  Alcotest.(check bool) "distance-1 dependence detected" true
    (List.exists
       (fun d -> d.Memdep.dep_verdict = Memdep.Carried 1)
       carried)

let suite =
  [
    Alcotest.test_case "known distance 1" `Quick test_known_distance;
    Alcotest.test_case "induction variable" `Quick test_iv_phi;
    Alcotest.test_case "even/odd independent" `Quick
      test_independent_interleave;
    Alcotest.test_case "distinct arrays" `Quick test_distinct_arrays;
    Alcotest.test_case "unknown symbolic offset" `Quick test_unknown_offset;
    Alcotest.test_case "phi pointer pairs across arrays" `Quick
      test_phi_pointer_pairs;
    Alcotest.test_case "gemm inner loop clean" `Quick test_gemm_inner_loop;
    Alcotest.test_case "seidel carried dep" `Quick test_seidel_carried;
  ]
